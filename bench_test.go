package fastintersect

// One benchmark per table/figure of the paper's evaluation, over scaled-down
// (but shape-preserving) workloads so `go test -bench=. -benchmem` finishes
// in minutes. The cmd/fsibench harness regenerates the full tables (with
// -scale full for paper-scale sizes); EXPERIMENTS.md records the outcomes.

import (
	"fmt"
	"sync"
	"testing"

	"fastintersect/internal/compress"
	"fastintersect/internal/core"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

const benchSeed = 0xBE4C_5EED

// benchAlgos is the roster plotted across Figures 4-7.
var benchAlgos = []Algorithm{
	Merge, SkipList, Hash, IntGroup, BPP, Adaptive, SvS, Lookup,
	RanGroup, RanGroupScan, HashBin,
}

// pairFixture is a preprocessed equal-size pair with controlled r.
type pairFixture struct {
	once  sync.Once
	a, b  *List
	rawA  []uint32
	rawB  []uint32
	n, r  int
	build func(f *pairFixture)
}

func (f *pairFixture) get(b *testing.B) (*List, *List) {
	f.once.Do(func() { f.build(f) })
	b.ResetTimer()
	return f.a, f.b
}

func newPairFixture(n, r int, seedOff uint64) *pairFixture {
	f := &pairFixture{n: n, r: r}
	f.build = func(f *pairFixture) {
		rng := xhash.NewRNG(benchSeed + seedOff)
		f.rawA, f.rawB = workload.PairWithIntersection(workload.DefaultUniverse, f.n, f.n, f.r, rng)
		f.a, _ = Preprocess(f.rawA, WithHashImages(4))
		f.b, _ = Preprocess(f.rawB, WithHashImages(4))
		// Warm every algorithm's lazy structures outside the timer.
		for _, algo := range benchAlgos {
			_, _ = IntersectWith(algo, f.a, f.b)
		}
	}
	return f
}

var fig4Fixture = newPairFixture(500_000, 5_000, 4)

// BenchmarkFig4SetSize reproduces Figure 4's algorithm roster on a 500K
// equal-size pair with a 1% intersection.
func BenchmarkFig4SetSize(b *testing.B) {
	for _, algo := range benchAlgos {
		b.Run(algo.String(), func(b *testing.B) {
			la, lb := fig4Fixture.get(b)
			for i := 0; i < b.N; i++ {
				_, _ = IntersectWith(algo, la, lb)
			}
		})
	}
}

// BenchmarkIntersectBuffered contrasts the allocating API with the pooled
// buffered one on the Figure 4 pair: same kernel work, zero allocations
// per op once the context and destination are warm.
func BenchmarkIntersectBuffered(b *testing.B) {
	la, lb := fig4Fixture.get(b)
	b.Run("IntersectWith", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = IntersectWith(RanGroupScan, la, lb)
		}
	})
	b.Run("IntersectWithBuf", func(b *testing.B) {
		ctx := GetExecContext()
		defer ctx.Release()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = IntersectWithBuf(ctx, RanGroupScan, la, lb)
		}
	})
	b.Run("IntersectInto", func(b *testing.B) {
		ctx := GetExecContext()
		defer ctx.Release()
		dst := make([]uint32, 0, la.Len())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = IntersectInto(ctx, dst[:0], RanGroupScan, la, lb)
		}
	})
}

var fig5Fixtures = map[int]*pairFixture{
	1:  newPairFixture(500_000, 5_000, 51),
	50: newPairFixture(500_000, 250_000, 52),
	90: newPairFixture(500_000, 450_000, 53),
}

// BenchmarkFig5IntersectionSize reproduces Figure 5's crossover: Merge
// overtakes the grouped algorithms once r grows past ~70% of the sets.
func BenchmarkFig5IntersectionSize(b *testing.B) {
	for _, pct := range []int{1, 50, 90} {
		for _, algo := range []Algorithm{Merge, IntGroup, RanGroup, RanGroupScan, SvS} {
			b.Run(fmt.Sprintf("r=%d%%/%s", pct, algo), func(b *testing.B) {
				la, lb := fig5Fixtures[pct].get(b)
				for i := 0; i < b.N; i++ {
					_, _ = IntersectWith(algo, la, lb)
				}
			})
		}
	}
}

// kFixture holds k preprocessed uniform sets (Figure 6's workload).
type kFixture struct {
	once  sync.Once
	lists []*List
}

var fig6Fixtures = map[int]*kFixture{2: {}, 3: {}, 4: {}}

func getKFixture(b *testing.B, k int) []*List {
	f := fig6Fixtures[k]
	f.once.Do(func() {
		rng := xhash.NewRNG(benchSeed + 600 + uint64(k))
		ns := make([]int, k)
		for i := range ns {
			ns[i] = 500_000
		}
		raw := workload.RandomSets(workload.DefaultUniverse, ns, rng)
		f.lists = make([]*List, k)
		for i, s := range raw {
			f.lists[i], _ = Preprocess(s, WithHashImages(2))
		}
		for _, algo := range []Algorithm{Merge, SvS, Lookup, RanGroup, RanGroupScan} {
			_, _ = IntersectWith(algo, f.lists...)
		}
	})
	b.ResetTimer()
	return f.lists
}

// BenchmarkFig6Keywords reproduces Figure 6: k = 2, 3, 4 sets, m = 2.
func BenchmarkFig6Keywords(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		for _, algo := range []Algorithm{Merge, SvS, Lookup, RanGroup, RanGroupScan} {
			b.Run(fmt.Sprintf("k=%d/%s", k, algo), func(b *testing.B) {
				lists := getKFixture(b, k)
				for i := 0; i < b.N; i++ {
					_, _ = IntersectWith(algo, lists...)
				}
			})
		}
	}
}

// ratioFixture preprocesses a skewed pair for the size-ratio experiment.
type ratioFixture struct {
	once sync.Once
	a, b *List
	sr   int
}

var ratioFixtures = map[int]*ratioFixture{16: {sr: 16}, 256: {sr: 256}}

func getRatioFixture(b *testing.B, sr int) (*List, *List) {
	f := ratioFixtures[sr]
	f.once.Do(func() {
		rng := xhash.NewRNG(benchSeed + 700 + uint64(sr))
		n2 := 1_000_000
		n1 := n2 / f.sr
		rawA, rawB := workload.PairWithIntersection(workload.DefaultUniverse, n1, n2, n1/100, rng)
		f.a, _ = Preprocess(rawA, WithHashImages(4))
		f.b, _ = Preprocess(rawB, WithHashImages(4))
		for _, algo := range []Algorithm{Hash, Lookup, RanGroupScan, HashBin} {
			_, _ = IntersectWith(algo, f.a, f.b)
		}
	})
	b.ResetTimer()
	return f.a, f.b
}

// BenchmarkRatio reproduces the §4 size-ratio sweep: RanGroupScan wins at
// small ratios, Hash/Lookup/HashBin at large ones.
func BenchmarkRatio(b *testing.B) {
	for _, sr := range []int{16, 256} {
		for _, algo := range []Algorithm{Hash, Lookup, RanGroupScan, HashBin} {
			b.Run(fmt.Sprintf("sr=%d/%s", sr, algo), func(b *testing.B) {
				la, lb := getRatioFixture(b, sr)
				for i := 0; i < b.N; i++ {
					_, _ = IntersectWith(algo, la, lb)
				}
			})
		}
	}
}

// BenchmarkSizes reports the §4 structure sizes as bytes-per-posting
// metrics rather than timings.
func BenchmarkSizes(b *testing.B) {
	rng := xhash.NewRNG(benchSeed + 800)
	set := workload.RandomSets(workload.DefaultUniverse, []int{500_000}, rng)[0]
	fam := core.NewFamily(benchSeed, core.MaxImageCount)
	for i := 0; i < b.N; i++ {
		rgs2, _ := core.NewRanGroupScanList(fam, set, 2)
		rgs4, _ := core.NewRanGroupScanList(fam, set, 4)
		ig, _ := core.NewIntGroupList(fam, set, false)
		rg, _ := core.NewRanGroupList(fam, set)
		b.ReportMetric(float64(rgs2.SizeWords()*8)/float64(len(set)), "RGS2-B/posting")
		b.ReportMetric(float64(rgs4.SizeWords()*8)/float64(len(set)), "RGS4-B/posting")
		b.ReportMetric(float64(ig.SizeWords()*8)/float64(len(set)), "IntGroup-B/posting")
		b.ReportMetric(float64(rg.SizeWords()*8)/float64(len(set)), "RanGroup-B/posting")
	}
}

// realBench holds the simulated real workload for Figures 7 and 12.
type realBench struct {
	once  sync.Once
	real  *workload.Real
	lists map[int]*List
}

var realFixture realBench

func getRealBench(b *testing.B) *realBench {
	realFixture.once.Do(func() {
		cfg := workload.SmallRealConfig()
		cfg.NumDocs = 100_000
		cfg.NumTerms = 10_000
		cfg.NumQueries = 200
		realFixture.real = workload.NewReal(cfg)
		realFixture.lists = map[int]*List{}
		for _, q := range realFixture.real.Queries {
			for _, term := range q.Terms {
				if _, ok := realFixture.lists[term]; !ok {
					realFixture.lists[term], _ = Preprocess(realFixture.real.Postings[term], WithHashImages(4))
				}
			}
		}
	})
	b.ResetTimer()
	return &realFixture
}

// queryLists resolves a query's preprocessed lists.
func (r *realBench) queryLists(q workload.Query) []*List {
	out := make([]*List, len(q.Terms))
	for i, t := range q.Terms {
		out[i] = r.lists[t]
	}
	return out
}

// BenchmarkFig7RealWorkload runs the whole simulated query log per
// iteration; compare algorithms by ns/op.
func BenchmarkFig7RealWorkload(b *testing.B) {
	for _, algo := range []Algorithm{Merge, SvS, Lookup, Hash, RanGroup, RanGroupScan, HashBin} {
		b.Run(algo.String(), func(b *testing.B) {
			r := getRealBench(b)
			// Warm structures.
			for _, q := range r.real.Queries {
				_, _ = IntersectWith(algo, r.queryLists(q)...)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range r.real.Queries {
					_, _ = IntersectWith(algo, r.queryLists(q)...)
				}
			}
		})
	}
}

// BenchmarkFig12PerK is Figure 12: the real workload split by query length.
func BenchmarkFig12PerK(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		for _, algo := range []Algorithm{Merge, RanGroup, RanGroupScan} {
			b.Run(fmt.Sprintf("k=%d/%s", k, algo), func(b *testing.B) {
				r := getRealBench(b)
				var queries []workload.Query
				for _, q := range r.real.Queries {
					if len(q.Terms) == k {
						queries = append(queries, q)
					}
				}
				if len(queries) == 0 {
					b.Skip("no queries of this length in the sample")
				}
				for _, q := range queries {
					_, _ = IntersectWith(algo, r.queryLists(q)...)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, q := range queries {
						_, _ = IntersectWith(algo, r.queryLists(q)...)
					}
				}
			})
		}
	}
}

// compressedFixture builds the Figure 8 variants once.
type compressedFixture struct {
	once   sync.Once
	merged *compress.MergeList
	mergeB *compress.MergeList
	lookA  *compress.LookupList
	lookB  *compress.LookupList
	rgsDA  *compress.RGSList
	rgsDB  *compress.RGSList
	rgsLA  *compress.RGSList
	rgsLB  *compress.RGSList
}

var fig8Fixture compressedFixture

func getFig8Fixture(b *testing.B) *compressedFixture {
	fig8Fixture.once.Do(func() {
		rng := xhash.NewRNG(benchSeed + 900)
		fam := core.NewFamily(benchSeed, core.MaxImageCount)
		x, y := workload.PairWithIntersection(workload.DefaultUniverse, 524_288, 524_288, 5_242, rng)
		fig8Fixture.merged, _ = compress.NewMergeList(x, compress.Delta)
		fig8Fixture.mergeB, _ = compress.NewMergeList(y, compress.Delta)
		fig8Fixture.lookA, _ = compress.NewLookupListAuto(x, compress.Delta, 32)
		fig8Fixture.lookB, _ = compress.NewLookupListAuto(y, compress.Delta, 32)
		fig8Fixture.rgsDA, _ = compress.NewRGSList(fam, x, 1, compress.RGSDelta)
		fig8Fixture.rgsDB, _ = compress.NewRGSList(fam, y, 1, compress.RGSDelta)
		fig8Fixture.rgsLA, _ = compress.NewRGSList(fam, x, 1, compress.RGSLowbits)
		fig8Fixture.rgsLB, _ = compress.NewRGSList(fam, y, 1, compress.RGSLowbits)
	})
	b.ResetTimer()
	return &fig8Fixture
}

// BenchmarkFig8Compressed reproduces Figure 8's time panel on a 512K pair.
func BenchmarkFig8Compressed(b *testing.B) {
	b.Run("Merge_Delta", func(b *testing.B) {
		f := getFig8Fixture(b)
		for i := 0; i < b.N; i++ {
			compress.IntersectMerge(f.merged, f.mergeB)
		}
	})
	b.Run("Lookup_Delta", func(b *testing.B) {
		f := getFig8Fixture(b)
		for i := 0; i < b.N; i++ {
			compress.IntersectLookup(f.lookA, f.lookB)
		}
	})
	b.Run("RanGroupScan_Delta", func(b *testing.B) {
		f := getFig8Fixture(b)
		for i := 0; i < b.N; i++ {
			compress.IntersectRGS(f.rgsDA, f.rgsDB)
		}
	})
	b.Run("RanGroupScan_Lowbits", func(b *testing.B) {
		f := getFig8Fixture(b)
		for i := 0; i < b.N; i++ {
			compress.IntersectRGS(f.rgsLA, f.rgsLB)
		}
	})
}

// BenchmarkRealCompressed is the §4.1 real-data compressed comparison on
// the simulated workload's 2-keyword queries.
func BenchmarkRealCompressed(b *testing.B) {
	r := getRealBench(b)
	fam := core.NewFamily(benchSeed, core.MaxImageCount)
	type pair struct {
		ml1, ml2 *compress.MergeList
		rl1, rl2 *compress.RGSList
	}
	var pairs []pair
	for _, q := range r.real.Queries {
		if len(q.Terms) != 2 || len(pairs) >= 50 {
			continue
		}
		p1, p2 := r.real.Postings[q.Terms[0]], r.real.Postings[q.Terms[1]]
		var p pair
		p.ml1, _ = compress.NewMergeList(p1, compress.Delta)
		p.ml2, _ = compress.NewMergeList(p2, compress.Delta)
		p.rl1, _ = compress.NewRGSList(fam, p1, 1, compress.RGSLowbits)
		p.rl2, _ = compress.NewRGSList(fam, p2, 1, compress.RGSLowbits)
		pairs = append(pairs, p)
	}
	b.Run("Merge_Delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range pairs {
				compress.IntersectMerge(p.ml1, p.ml2)
			}
		}
	})
	b.Run("RanGroupScan_Lowbits", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range pairs {
				compress.IntersectRGS(p.rl1, p.rl2)
			}
		}
	})
}

// BenchmarkFig9Filtering measures Algorithm 5's filter success probability
// (reported as a metric, not a timing).
func BenchmarkFig9Filtering(b *testing.B) {
	rng := xhash.NewRNG(benchSeed + 901)
	fam := core.NewFamily(benchSeed, core.MaxImageCount)
	x, y := workload.PairWithIntersection(workload.DefaultUniverse, 100_000, 100_000, 1_000, rng)
	for _, m := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			la, _ := core.NewRanGroupScanList(fam, x, m)
			lb, _ := core.NewRanGroupScanList(fam, y, m)
			b.ResetTimer()
			var p float64
			for i := 0; i < b.N; i++ {
				_, st := core.IntersectRanGroupScanStats(la, lb)
				p = st.SuccessProbability()
			}
			b.ReportMetric(p, "P(filter)")
		})
	}
}

// BenchmarkFig10Preprocess times structure construction (Figure 10).
func BenchmarkFig10Preprocess(b *testing.B) {
	rng := xhash.NewRNG(benchSeed + 902)
	set := workload.RandomSets(workload.DefaultUniverse, []int{500_000}, rng)[0]
	fam := core.NewFamily(benchSeed, core.MaxImageCount)
	b.Run("HashBin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = core.NewHashBinList(fam, set)
		}
	})
	b.Run("IntGroup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = core.NewIntGroupList(fam, set, false)
		}
	})
	b.Run("RanGroup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = core.NewRanGroupList(fam, set)
		}
	})
	b.Run("RanGroupScan_m4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = core.NewRanGroupScanList(fam, set, 4)
		}
	})
}

// BenchmarkFig11PreprocessCompressed times compressed construction
// (Figure 11).
func BenchmarkFig11PreprocessCompressed(b *testing.B) {
	rng := xhash.NewRNG(benchSeed + 903)
	set := workload.RandomSets(workload.DefaultUniverse, []int{500_000}, rng)[0]
	fam := core.NewFamily(benchSeed, core.MaxImageCount)
	b.Run("RGS_Lowbits", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = compress.NewRGSList(fam, set, 1, compress.RGSLowbits)
		}
	})
	b.Run("RGS_Delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = compress.NewRGSList(fam, set, 1, compress.RGSDelta)
		}
	})
	b.Run("Merge_Delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = compress.NewMergeList(set, compress.Delta)
		}
	})
	b.Run("Merge_Gamma", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = compress.NewMergeList(set, compress.Gamma)
		}
	})
}
