package fastintersect_test

import (
	"fmt"
	"sort"

	"fastintersect"
)

// ExampleIntersect preprocesses two sorted ID lists and intersects them
// with the auto-selected algorithm. Intersect returns results in an
// algorithm-dependent order, so they are sorted for display (or use
// IntersectSorted).
func ExampleIntersect() {
	a, _ := fastintersect.Preprocess([]uint32{2, 4, 8, 16, 32, 64})
	b, _ := fastintersect.Preprocess([]uint32{3, 4, 9, 16, 27, 64})
	res, _ := fastintersect.Intersect(a, b)
	sort.Slice(res, func(i, j int) bool { return res[i] < res[j] })
	fmt.Println(res)
	// Output: [4 16 64]
}

// ExampleIntersectWith selects a specific algorithm — here the Merge
// baseline, which emits ascending IDs — making head-to-head comparisons on
// one workload a one-line change.
func ExampleIntersectWith() {
	a, _ := fastintersect.Preprocess([]uint32{1, 3, 5, 7, 9})
	b, _ := fastintersect.Preprocess([]uint32{3, 4, 5, 6, 7})
	res, _ := fastintersect.IntersectWith(fastintersect.Merge, a, b)
	fmt.Println(res)
	// Output: [3 5 7]
}

// ExampleParseAlgorithm round-trips an algorithm name, the mechanism the
// CLI tools use for their -algo flags.
func ExampleParseAlgorithm() {
	algo, _ := fastintersect.ParseAlgorithm("rangroupscan")
	fmt.Println(algo)
	// Output: RanGroupScan
}
