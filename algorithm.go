package fastintersect

import (
	"fmt"
	"strings"

	"fastintersect/internal/plan"
)

// Algorithm selects an intersection strategy. The first four are the
// paper's contributions; the rest are the baselines of its evaluation.
type Algorithm int

const (
	// Auto picks per the paper's guidance: HashBin when the size ratio
	// between the largest and smallest list is at least AutoSkewThreshold,
	// RanGroupScan otherwise.
	Auto Algorithm = iota
	// RanGroupScan is Algorithm 5 (§3.3): the simple randomized-partition
	// scheme with m word-image filters — the paper's overall winner.
	RanGroupScan
	// RanGroup is Algorithm 4 (§3.2): randomized partitions with inverted
	// mappings; expected O(n/√w + k·r).
	RanGroup
	// IntGroup is Algorithm 1 (§3.1): fixed-width √w partitions; two sets
	// only.
	IntGroup
	// IntGroupOpt is IntGroup with the optimal group widths of §A.1.1
	// (requires the multi-resolution layers; two sets only).
	IntGroupOpt
	// HashBin is §3.4's per-bucket binary search for skewed sizes.
	HashBin
	// Merge is the linear parallel scan over sorted lists.
	Merge
	// Hash probes pre-built open-addressing hash tables with the smallest
	// list.
	Hash
	// SkipList intersects static skip lists (Pugh).
	SkipList
	// SvS gallops each element of the smallest set through the others.
	SvS
	// Adaptive is Demaine–López-Ortiz–Munro round-robin intersection.
	Adaptive
	// BaezaYates is median divide-and-conquer intersection.
	BaezaYates
	// SmallAdaptive is Barbay et al.'s hybrid.
	SmallAdaptive
	// Lookup is the Sanders–Transier two-level bucket structure.
	Lookup
	// BPP is the (simplified) Bille–Pagh–Pagh hashed-image algorithm.
	BPP
	// Bitseg is the word-parallel bitmap tier (internal/bitseg):
	// density-partitioned lists intersected 64 docIDs per AND over dense
	// ranges, run merges over sparse ones.
	Bitseg
)

// AutoSkewThreshold is the size ratio above which Auto switches to HashBin;
// the paper's ratio experiment finds the hash-based family dominant from
// sr ≈ 100 upward.
const AutoSkewThreshold = 100

// algoNames in declaration order.
var algoNames = [...]string{
	"Auto", "RanGroupScan", "RanGroup", "IntGroup", "IntGroupOpt", "HashBin",
	"Merge", "Hash", "SkipList", "SvS", "Adaptive", "BaezaYates",
	"SmallAdaptive", "Lookup", "BPP", "Bitseg",
}

// String returns the algorithm's name as used in the paper.
func (a Algorithm) String() string {
	if int(a) < len(algoNames) {
		return algoNames[a]
	}
	return "Algorithm(?)"
}

// ParseAlgorithm parses an algorithm name, case-insensitively, into the
// corresponding Algorithm. It inverts Algorithm.String and accepts "Auto"
// as well as every name returned by Algorithms.
func ParseAlgorithm(name string) (Algorithm, error) {
	for i, n := range algoNames {
		if strings.EqualFold(n, name) {
			return Algorithm(i), nil
		}
	}
	return 0, fmt.Errorf("fastintersect: unknown algorithm %q (known: %s)",
		name, strings.Join(algoNames[:], ", "))
}

// KernelAlgorithm maps the query planner's list-kernel choice
// (internal/plan) onto the Algorithm executing it — the single source of
// truth for every executor (the engine's per-shard dispatch, the fsi CLI).
// Stored-tier kernels have no public Algorithm and map to the family
// default, RanGroupScan.
func KernelAlgorithm(k plan.Kernel) Algorithm {
	switch k {
	case plan.KernelMerge:
		return Merge
	case plan.KernelGallop:
		return SvS
	case plan.KernelHashBin:
		return HashBin
	case plan.KernelBitsegAnd:
		return Bitseg
	default:
		return RanGroupScan
	}
}

// Algorithms lists every selectable algorithm (excluding Auto), in the
// order used throughout the benchmarks.
func Algorithms() []Algorithm {
	return []Algorithm{
		RanGroupScan, RanGroup, IntGroup, IntGroupOpt, HashBin,
		Merge, Hash, SkipList, SvS, Adaptive, BaezaYates, SmallAdaptive,
		Lookup, BPP, Bitseg,
	}
}

// Sorted reports whether the algorithm emits ascending document IDs
// (the grouped algorithms emit permutation/group order instead).
func (a Algorithm) Sorted() bool {
	switch a {
	case RanGroupScan, RanGroup, IntGroup, IntGroupOpt, HashBin, Auto:
		return false
	default:
		return true
	}
}

// MaxSets returns the maximum number of sets the algorithm accepts in one
// call (0 = unlimited). IntGroup's fixed-width partitioning does not extend
// beyond two sets (§3.1, "Limitations of Fixed-Width Partitions").
func (a Algorithm) MaxSets() int {
	switch a {
	case IntGroup, IntGroupOpt:
		return 2
	default:
		return 0
	}
}
