package fastintersect

import (
	"encoding/binary"
	"testing"

	"fastintersect/internal/sets"
)

// decodeFuzzSets splits fuzz bytes into two sorted duplicate-free sets.
func decodeFuzzSets(data []byte) (a, b []uint32) {
	if len(data) == 0 {
		return nil, nil
	}
	split := int(data[0])
	rest := data[1:]
	var raw []uint32
	for len(rest) >= 4 {
		raw = append(raw, binary.LittleEndian.Uint32(rest[:4]))
		rest = rest[4:]
	}
	if split > len(raw) {
		split = len(raw)
	}
	a = sets.SortDedup(append([]uint32(nil), raw[:split]...))
	b = sets.SortDedup(append([]uint32(nil), raw[split:]...))
	return a, b
}

// FuzzIntersectAllAlgorithms feeds arbitrary byte-derived sets through
// every algorithm and cross-checks against the reference merge. Run the
// seed corpus with `go test -run=Fuzz`; fuzz continuously with
// `go test -fuzz=FuzzIntersectAllAlgorithms`.
func FuzzIntersectAllAlgorithms(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 0, 0})
	f.Add([]byte{2, 1, 0, 0, 0, 2, 0, 0, 0, 1, 0, 0, 0, 3, 0, 0, 0})
	f.Add([]byte{4, 255, 255, 255, 255, 0, 0, 0, 0, 255, 255, 255, 255, 0, 0, 0, 0})
	seed := []byte{8}
	for i := byte(0); i < 64; i++ {
		seed = append(seed, i, 0, byte(i%3), 0)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<14 {
			return // keep individual cases fast
		}
		aSet, bSet := decodeFuzzSets(data)
		la, err := Preprocess(aSet)
		if err != nil {
			t.Fatalf("Preprocess(a): %v", err)
		}
		lb, err := Preprocess(bSet)
		if err != nil {
			t.Fatalf("Preprocess(b): %v", err)
		}
		want := sets.IntersectReference(aSet, bSet)
		for _, algo := range Algorithms() {
			got, err := IntersectWith(algo, la, lb)
			if err != nil {
				t.Fatalf("%v: %v", algo, err)
			}
			if !algo.Sorted() {
				sets.SortU32(got)
			}
			if !sets.Equal(got, want) {
				t.Fatalf("%v: got %v, want %v (a=%v b=%v)", algo, got, want, aSet, bSet)
			}
		}
	})
}
