package fastintersect

import (
	"fmt"
	"sync"

	"fastintersect/internal/baseline"
	"fastintersect/internal/bitseg"
	"fastintersect/internal/core"
	"fastintersect/internal/sets"
)

// ExecContext owns all per-query scratch of the intersection API: the core
// kernels' workspaces (operand orderings, memoized prefix ANDs, merge
// buffers) and an internal result buffer. Acquire one with GetExecContext,
// thread it through any number of IntersectInto / IntersectWithBuf calls,
// and Release it back to the package pool; steady state, a warm context
// executes cached-structure intersections with zero allocations.
//
// An ExecContext is not safe for concurrent use — concurrent queries must
// each acquire their own. The zero value is ready to use for callers that
// prefer to manage lifetimes themselves (e.g. one long-lived context per
// worker goroutine) instead of the pool.
type ExecContext struct {
	sc      core.Scratch
	rgs     []*core.RanGroupScanList
	rg      []*core.RanGroupList
	hb      []*core.HashBinList
	ordered []*List
	raw     [][]uint32
	tables  []*baseline.HashSet
	skips   []*baseline.SkipList
	lookups []*baseline.Lookup
	bpps    []*baseline.BPP
	bsegs   []*bitseg.List
	buf     []uint32
}

var execPool = sync.Pool{New: func() any { return new(ExecContext) }}

// GetExecContext returns a context from the package pool.
func GetExecContext() *ExecContext { return execPool.Get().(*ExecContext) }

// Release returns the context to the pool. Slices previously returned by
// IntersectWithBuf on this context are invalidated: a later query may
// overwrite their backing array. Operand references are dropped so a pooled
// context never pins preprocessed lists in memory.
func (c *ExecContext) Release() {
	c.Reset()
	execPool.Put(c)
}

// Reset drops the context's operand references (so it pins nothing) while
// keeping its buffers for reuse. Callers that own a long-lived context —
// rather than borrowing one from the pool — should Reset it between
// queries whose operands may die (e.g. across an index rebuild).
//
// Each slice is cleared over its full capacity: grow reslices down for
// narrower calls, so pointers written by an earlier wider call survive
// past the current length and would otherwise pin a retired index
// generation.
func (c *ExecContext) Reset() {
	clear(c.rgs[:cap(c.rgs)])
	clear(c.rg[:cap(c.rg)])
	clear(c.hb[:cap(c.hb)])
	clear(c.ordered[:cap(c.ordered)])
	clear(c.raw[:cap(c.raw)])
	clear(c.tables[:cap(c.tables)])
	clear(c.skips[:cap(c.skips)])
	clear(c.lookups[:cap(c.lookups)])
	clear(c.bpps[:cap(c.bpps)])
	clear(c.bsegs[:cap(c.bsegs)])
}

// grow returns s resized to k reusing its capacity.
func grow[T any](s []T, k int) []T {
	if cap(s) < k {
		return make([]T, k)
	}
	return s[:k]
}

// IntersectWithBuf computes the intersection with a specific algorithm into
// the context's internal buffer and returns a slice aliasing it. The result
// is valid until the context's next IntersectWithBuf/IntersectInto call or
// Release — callers that keep it must copy. This is the zero-allocation
// form of IntersectWith.
func IntersectWithBuf(ctx *ExecContext, algo Algorithm, lists ...*List) ([]uint32, error) {
	if ctx == nil {
		return IntersectWith(algo, lists...)
	}
	out, err := IntersectInto(ctx, ctx.buf[:0], algo, lists...)
	if err != nil {
		return nil, err
	}
	ctx.buf = out
	return out, nil
}

// IntersectInto computes the intersection with a specific algorithm,
// appending the result to dst (which must not alias any operand) and
// returning the extended slice. All transient workspace comes from ctx, so
// steady-state calls allocate only if the result outgrows dst. A nil dst
// yields a fresh result slice; a nil ctx draws one from the pool for the
// duration of the call.
func IntersectInto(ctx *ExecContext, dst []uint32, algo Algorithm, lists ...*List) ([]uint32, error) {
	if ctx == nil {
		ctx = GetExecContext()
		defer ctx.Release()
	}
	if len(lists) == 0 {
		return nil, ErrNoLists
	}
	for _, l := range lists[1:] {
		if l.opts.seed != lists[0].opts.seed {
			return nil, fmt.Errorf("fastintersect: lists preprocessed with different seeds (%#x vs %#x)",
				lists[0].opts.seed, l.opts.seed)
		}
	}
	if mx := algo.MaxSets(); mx > 0 && len(lists) > mx {
		return nil, fmt.Errorf("fastintersect: %v supports at most %d sets, got %d", algo, mx, len(lists))
	}
	if len(lists) == 1 {
		return append(dst, lists[0].set...), nil
	}
	if algo == Auto {
		algo = autoPick(lists)
	}
	switch algo {
	case RanGroupScan:
		ctx.rgs = grow(ctx.rgs, len(lists))
		for i, l := range lists {
			ctx.rgs[i] = l.ranGroupScan()
		}
		return core.IntersectRanGroupScanInto(dst, &ctx.sc, ctx.rgs...), nil
	case RanGroup:
		ctx.rg = grow(ctx.rg, len(lists))
		for i, l := range lists {
			ctx.rg[i] = l.ranGroup()
		}
		return core.IntersectRanGroupInto(dst, &ctx.sc, ctx.rg...), nil
	case IntGroup:
		return appendOrAdopt(dst, core.IntersectIntGroup(lists[0].intGroup(), lists[1].intGroup())), nil
	case IntGroupOpt:
		return appendOrAdopt(dst, core.IntersectIntGroupOptimal(lists[0].intGroupOpt(), lists[1].intGroupOpt())), nil
	case HashBin:
		ctx.hb = grow(ctx.hb, len(lists))
		for i, l := range lists {
			ctx.hb[i] = l.hashBin()
		}
		return core.IntersectHashBinInto(dst, &ctx.sc, ctx.hb...), nil
	case Merge:
		if len(lists) == 2 {
			// Two sorted sets merge straight into dst — the query planner's
			// dominant shape stays on the zero-allocation path.
			return sets.IntersectInto(dst, lists[0].set, lists[1].set), nil
		}
		return appendOrAdopt(dst, baseline.Merge(ctx.rawSets(lists)...)), nil
	case Hash:
		ordered := ctx.bySize(lists)
		ctx.tables = grow(ctx.tables, len(ordered)-1)
		for i, l := range ordered[1:] {
			ctx.tables[i] = l.hashSet()
		}
		return appendOrAdopt(dst, baseline.HashIntersect(ordered[0].set, ctx.tables...)), nil
	case SkipList:
		ordered := ctx.bySize(lists)
		ctx.skips = grow(ctx.skips, len(ordered)-1)
		for i, l := range ordered[1:] {
			ctx.skips[i] = l.skipList()
		}
		return appendOrAdopt(dst, baseline.SkipIntersect(ordered[0].set, ctx.skips...)), nil
	case SvS:
		if len(lists) == 2 {
			// Gallop the smaller set through the larger straight into dst
			// (same algorithm, no intermediate slice).
			return sets.IntersectGallopInto(dst, lists[0].set, lists[1].set), nil
		}
		return appendOrAdopt(dst, baseline.SvS(ctx.rawSets(lists)...)), nil
	case Adaptive:
		return appendOrAdopt(dst, baseline.Adaptive(ctx.rawSets(lists)...)), nil
	case BaezaYates:
		return appendOrAdopt(dst, baseline.BaezaYates(ctx.rawSets(lists)...)), nil
	case SmallAdaptive:
		return appendOrAdopt(dst, baseline.SmallAdaptive(ctx.rawSets(lists)...)), nil
	case Lookup:
		ordered := ctx.bySize(lists)
		ctx.lookups = grow(ctx.lookups, len(ordered)-1)
		for i, l := range ordered[1:] {
			ctx.lookups[i] = l.lookupStruct()
		}
		return appendOrAdopt(dst, baseline.LookupIntersect(ordered[0].set, ctx.lookups...)), nil
	case BPP:
		ctx.bpps = grow(ctx.bpps, len(lists))
		for i, l := range lists {
			ctx.bpps[i] = l.bppStruct()
		}
		return appendOrAdopt(dst, baseline.IntersectBPP(ctx.bpps...)), nil
	case Bitseg:
		ctx.bsegs = grow(ctx.bsegs, len(lists))
		for i, l := range lists {
			ctx.bsegs[i] = l.bitsegStruct()
		}
		return bitseg.IntersectKInto(dst, ctx.bsegs...), nil
	default:
		return nil, fmt.Errorf("fastintersect: unknown algorithm %d", int(algo))
	}
}

// appendOrAdopt appends res to dst, adopting res outright when dst is nil
// (the baseline algorithms return fresh slices, so no copy is needed).
func appendOrAdopt(dst, res []uint32) []uint32 {
	if dst == nil {
		return res
	}
	return append(dst, res...)
}

// rawSets extracts the sorted element slices into the context's slice.
func (c *ExecContext) rawSets(lists []*List) [][]uint32 {
	c.raw = grow(c.raw, len(lists))
	for i, l := range lists {
		c.raw[i] = l.set
	}
	return c.raw
}

// bySize returns lists ordered by ascending length in the context's slice.
func (c *ExecContext) bySize(lists []*List) []*List {
	c.ordered = grow(c.ordered, len(lists))
	copy(c.ordered, lists)
	out := c.ordered
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Len() < out[j-1].Len(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
