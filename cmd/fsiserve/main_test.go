package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"fastintersect"
	"fastintersect/internal/engine"
	"fastintersect/internal/invindex"
	"fastintersect/internal/sets"
	"fastintersect/internal/workload"
)

func testCorpus(t testing.TB) *workload.Real {
	t.Helper()
	return workload.NewReal(workload.RealConfig{
		NumDocs:    20_000,
		NumTerms:   2_000,
		NumQueries: 300,
		ZipfS:      0.7,
		TopDFFrac:  0.2,
		HotFrac:    0.08,
		HotWeight:  8,
		Seed:       0xFEED,
	})
}

func testServer(t testing.TB, corpus *workload.Real, shards int) (*httptest.Server, *engine.Engine) {
	return testServerStorage(t, corpus, shards, invindex.StorageRaw)
}

func testServerStorage(t testing.TB, corpus *workload.Real, shards int, st invindex.Storage) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng := engine.New(engine.Config{Shards: shards, CacheSize: 256, Storage: st})
	if err := loadCorpus(eng, corpus); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(eng).handler())
	t.Cleanup(ts.Close)
	return ts, eng
}

func getQuery(t *testing.T, ts *httptest.Server, q string) (queryResponse, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/query?" + url.Values{"q": {q}, "limit": {"-1"}}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return qr, resp.StatusCode
}

// TestServeMatchesDirectIntersection is the acceptance test: served /query
// results over a >= 4-shard index must equal fastintersect.IntersectSorted
// run directly over the same posting lists, under concurrent requests.
func TestServeMatchesDirectIntersection(t *testing.T) {
	corpus := testCorpus(t)
	ts, _ := testServer(t, corpus, 5)

	// Preprocess each referenced posting list once, directly via the
	// public API — the ground truth the served results must match.
	prepped := map[int]*fastintersect.List{}
	var mu sync.Mutex
	direct := func(q workload.Query) []uint32 {
		mu.Lock()
		defer mu.Unlock()
		lists := make([]*fastintersect.List, len(q.Terms))
		for i, term := range q.Terms {
			l, ok := prepped[term]
			if !ok {
				var err error
				l, err = fastintersect.Preprocess(corpus.Postings[term])
				if err != nil {
					t.Errorf("preprocess term %d: %v", term, err)
					return nil
				}
				prepped[term] = l
			}
			lists[i] = l
		}
		out, err := fastintersect.IntersectSorted(lists...)
		if err != nil {
			t.Errorf("direct intersect: %v", err)
			return nil
		}
		return out
	}

	queries := corpus.Queries[:100]
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(queries); i += 8 {
				q := queries[i]
				names := make([]string, len(q.Terms))
				for j, term := range q.Terms {
					names[j] = workload.TermName(term)
				}
				qs := strings.Join(names, " AND ")
				qr, code := getQuery(t, ts, qs)
				if code != http.StatusOK {
					t.Errorf("query %q: status %d", qs, code)
					return
				}
				want := direct(q)
				if !sets.Equal(qr.Docs, want) {
					t.Errorf("query %q: served %d docs, direct %d", qs, len(qr.Docs), len(want))
					return
				}
				if qr.Count != len(want) {
					t.Errorf("query %q: count %d != %d", qs, qr.Count, len(want))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestServeCompressedStorage runs the same service over compressed posting
// storage: served results must match the raw-storage server query for
// query, and /stats must expose the per-encoding posting accounting.
func TestServeCompressedStorage(t *testing.T) {
	corpus := testCorpus(t)
	tsRaw, _ := testServer(t, corpus, 3)
	tsComp, _ := testServerStorage(t, corpus, 3, invindex.StorageCompressed)

	queries := []string{
		workload.TermName(0),
		workload.TermName(0) + " AND " + workload.TermName(3),
		workload.TermName(1) + " AND (" + workload.TermName(5) + " OR " + workload.TermName(9) + ")",
		workload.TermName(2) + " AND NOT " + workload.TermName(4),
	}
	for _, q := range queries {
		rr, code := getQuery(t, tsRaw, q)
		if code != http.StatusOK {
			t.Fatalf("raw %q: status %d", q, code)
		}
		cr, code := getQuery(t, tsComp, q)
		if code != http.StatusOK {
			t.Fatalf("compressed %q: status %d", q, code)
		}
		if !sets.Equal(rr.Docs, cr.Docs) {
			t.Fatalf("storage changed result of %q: raw %d docs, compressed %d docs",
				q, len(rr.Docs), len(cr.Docs))
		}
	}

	resp, err := http.Get(tsComp.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Storage != "compressed" {
		t.Fatalf("storage = %q", st.Storage)
	}
	if st.Postings.Total == 0 || st.Postings.StoredBytes >= st.Postings.RawBytes {
		t.Fatalf("postings accounting = %+v", st.Postings)
	}
	if len(st.Postings.Encodings) < 2 {
		t.Fatalf("expected multiple encodings, got %v", st.Postings.Encodings)
	}
}

// TestServeBooleanOperators verifies OR/NOT queries against reference set
// algebra over the raw posting lists.
func TestServeBooleanOperators(t *testing.T) {
	corpus := testCorpus(t)
	ts, _ := testServer(t, corpus, 4)
	p := func(term int) []uint32 { return corpus.Postings[term] }
	name := workload.TermName

	cases := []struct {
		q    string
		want []uint32
	}{
		{
			fmt.Sprintf("%s OR %s", name(10), name(11)),
			sets.Union(p(10), p(11)),
		},
		{
			fmt.Sprintf("%s AND NOT %s", name(5), name(6)),
			sets.Difference(p(5), p(6)),
		},
		{
			fmt.Sprintf("(%s AND %s) OR %s", name(3), name(4), name(900)),
			sets.Union(sets.IntersectReference(p(3), p(4)), p(900)),
		},
		{
			fmt.Sprintf("%s AND (%s OR %s)", name(7), name(8), name(9)),
			sets.IntersectReference(p(7), sets.Union(p(8), p(9))),
		},
	}
	for _, c := range cases {
		qr, code := getQuery(t, ts, c.q)
		if code != http.StatusOK {
			t.Fatalf("query %q: status %d", c.q, code)
		}
		if !sets.Equal(qr.Docs, c.want) {
			t.Fatalf("query %q: served %d docs, reference %d", c.q, len(qr.Docs), len(c.want))
		}
	}
}

func TestServeEndpoints(t *testing.T) {
	corpus := testCorpus(t)
	ts, _ := testServer(t, corpus, 4)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// A couple of queries so /stats has something to report.
	if _, code := getQuery(t, ts, workload.TermName(42)); code != http.StatusOK {
		t.Fatalf("warm-up query failed: %d", code)
	}
	if _, code := getQuery(t, ts, workload.TermName(42)); code != http.StatusOK {
		t.Fatalf("warm-up query failed: %d", code)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	// Docs counts distinct indexed documents — the union of the corpus's
	// posting lists (documents the generator never sampled are not indexed).
	wantDocs := uint64(len(sets.UnionKInto(nil, corpus.Postings...)))
	if st.Shards != 4 || st.Queries < 2 || st.Cache.Hits < 1 || st.Docs != wantDocs {
		t.Fatalf("stats = %+v, want docs = %d", st, wantDocs)
	}

	// Bad queries are 400s with a JSON error.
	for _, bad := range []string{"", "NOT x", "a AND ("} {
		_, code := getQuery(t, ts, bad)
		if code != http.StatusBadRequest {
			t.Fatalf("query %q: status %d, want 400", bad, code)
		}
	}

	// Truncation contract.
	respT, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape(workload.TermName(0)) + "&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	defer respT.Body.Close()
	var qr queryResponse
	if err := json.NewDecoder(respT.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Docs) != 5 || !qr.Truncated || qr.Count <= 5 {
		t.Fatalf("truncated response = docs:%d truncated:%v count:%d", len(qr.Docs), qr.Truncated, qr.Count)
	}
}

func TestQueryStreamParsesAndServes(t *testing.T) {
	corpus := testCorpus(t)
	ts, _ := testServer(t, corpus, 4)
	stream := corpus.QueryStream(60, workload.StreamConfig{OrFrac: 0.3, NotFrac: 0.3, Seed: 7})
	if len(stream) != 60 {
		t.Fatalf("stream length %d", len(stream))
	}
	for _, q := range stream {
		if _, code := getQuery(t, ts, q); code != http.StatusOK {
			t.Fatalf("stream query %q: status %d", q, code)
		}
	}
}

// TestServeLimitValidation pins the limit contract: -1 is the explicit
// "no limit", 0 is count-only (empty docs, count intact), positive caps, and
// anything below -1 — previously a silent "unlimited" — is rejected.
func TestServeLimitValidation(t *testing.T) {
	corpus := testCorpus(t)
	ts, _ := testServer(t, corpus, 2)
	get := func(limit string) (queryResponse, int) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/query?" + url.Values{"q": {workload.TermName(0)}, "limit": {limit}}.Encode())
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var qr queryResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
				t.Fatal(err)
			}
		}
		return qr, resp.StatusCode
	}
	for _, bad := range []string{"-2", "-100", "abc", "1.5"} {
		if _, code := get(bad); code != http.StatusBadRequest {
			t.Fatalf("limit=%s: status %d, want 400", bad, code)
		}
	}
	full, code := get("-1")
	if code != http.StatusOK || full.Truncated || len(full.Docs) != full.Count || full.Count == 0 {
		t.Fatalf("limit=-1: code=%d truncated=%v docs=%d count=%d", code, full.Truncated, len(full.Docs), full.Count)
	}
	countOnly, code := get("0")
	if code != http.StatusOK || len(countOnly.Docs) != 0 || countOnly.Count != full.Count || !countOnly.Truncated {
		t.Fatalf("limit=0: code=%d docs=%v count=%d truncated=%v", code, countOnly.Docs, countOnly.Count, countOnly.Truncated)
	}
}

// TestServeNotBuilt pins the 503 contract on every index-touching endpoint
// before an index is installed.
func TestServeNotBuilt(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 2})
	ts := httptest.NewServer(newServer(eng).handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/query?q=a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query before install: %d, want 503", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/index/doc", "application/json",
		strings.NewReader(`{"doc_id":1,"terms":["a"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("add before install: %d, want 503", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/index/doc/1", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("delete before install: %d, want 503", resp.StatusCode)
	}
}

func postDoc(t *testing.T, ts *httptest.Server, body string) (mutationResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/index/doc", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr mutationResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			t.Fatal(err)
		}
	}
	return mr, resp.StatusCode
}

func deleteDoc(t *testing.T, ts *httptest.Server, id string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/index/doc/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestServeMutationEndpoints drives the live-update API end to end over
// both storage modes: an added document answers queries immediately
// (including previously cached ones), a deleted one disappears, and /stats
// surfaces the mutation/delta/generation counters.
func TestServeMutationEndpoints(t *testing.T) {
	for _, st := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		t.Run(st.String(), func(t *testing.T) {
			corpus := testCorpus(t)
			ts, _ := testServerStorage(t, corpus, 3, st)
			probe := workload.TermName(7)

			before, code := getQuery(t, ts, probe) // warms the cache
			if code != http.StatusOK {
				t.Fatalf("probe query: %d", code)
			}

			// Add a brand-new document carrying the probe term.
			const newID = 1_000_000
			mr, code := postDoc(t, ts, fmt.Sprintf(`{"doc_id":%d,"terms":[%q,"zzz-fresh"]}`, newID, probe))
			if code != http.StatusOK || mr.Status != "indexed" || mr.Generation == 0 {
				t.Fatalf("add: code=%d resp=%+v", code, mr)
			}
			after, code := getQuery(t, ts, probe)
			if code != http.StatusOK {
				t.Fatalf("post-add query: %d", code)
			}
			if after.Cached || after.Count != before.Count+1 || !sets.Contains(after.Docs, newID) {
				t.Fatalf("added doc not served fresh: cached=%v count %d→%d", after.Cached, before.Count, after.Count)
			}
			if fresh, _ := getQuery(t, ts, "zzz-fresh"); fresh.Count != 1 || fresh.Docs[0] != newID {
				t.Fatalf("fresh term query = %+v", fresh)
			}

			// Delete an original corpus document that matches the probe.
			victim := after.Docs[0]
			if victim == newID {
				victim = after.Docs[1]
			}
			if code := deleteDoc(t, ts, fmt.Sprint(victim)); code != http.StatusOK {
				t.Fatalf("delete: %d", code)
			}
			gone, _ := getQuery(t, ts, probe)
			if sets.Contains(gone.Docs, victim) || gone.Count != after.Count-1 {
				t.Fatalf("deleted doc still served: count %d→%d", after.Count, gone.Count)
			}
			// Deleting it again: 404.
			if code := deleteDoc(t, ts, fmt.Sprint(victim)); code != http.StatusNotFound {
				t.Fatalf("double delete: %d, want 404", code)
			}

			// Malformed mutations are 400s.
			for _, bad := range []string{``, `{`, `{"doc_id":1}`, `{"doc_id":1,"terms":[]}`, `{"doc_id":1,"terms":[""]}`, `{"doc_id":-1,"terms":["a"]}`, `{"doc_id":1,"terms":["a"],"nope":1}`} {
				if _, code := postDoc(t, ts, bad); code != http.StatusBadRequest {
					t.Fatalf("body %q: code %d, want 400", bad, code)
				}
			}
			if code := deleteDoc(t, ts, "notanumber"); code != http.StatusBadRequest {
				t.Fatalf("bad delete id: %d, want 400", code)
			}
			if code := deleteDoc(t, ts, "99999999999"); code != http.StatusBadRequest {
				t.Fatalf("out-of-range delete id: %d, want 400", code)
			}

			// /stats surfaces the mutable tier.
			resp, err := http.Get(ts.URL + "/stats")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var stat statsResponse
			if err := json.NewDecoder(resp.Body).Decode(&stat); err != nil {
				t.Fatal(err)
			}
			// Effective mutations: one add + one delete (the 404 double
			// delete is a no-op and must not invalidate the cache). Only the
			// delete tombstones anything — the added doc is brand new, so no
			// older segment holds a copy to suppress.
			if stat.Mutations != 2 || stat.Generation < 3 || stat.Delta.Docs != 1 || stat.Delta.Tombstones < 1 {
				t.Fatalf("stats mutable tier = mutations:%d gen:%d delta:%+v",
					stat.Mutations, stat.Generation, stat.Delta)
			}
		})
	}
}

// TestServeChurn replays an interleaved add/delete/query stream over HTTP
// against a scan-based reference for a single probe term — raw and
// compressed storage must both track the reference exactly.
func TestServeChurn(t *testing.T) {
	corpus := testCorpus(t)
	ts, eng := testServer(t, corpus, 4)
	probe := "churn-term"
	live := map[uint32]bool{}
	rngState := uint64(0x1234567)
	rng := func(n int) int { rngState = rngState*6364136223846793005 + 1; return int(rngState>>33) % n }
	for i := 0; i < 300; i++ {
		id := uint32(2_000_000 + rng(100))
		switch rng(3) {
		case 0:
			if _, code := postDoc(t, ts, fmt.Sprintf(`{"doc_id":%d,"terms":[%q]}`, id, probe)); code != http.StatusOK {
				t.Fatalf("op %d add: %d", i, code)
			}
			live[id] = true
		case 1:
			code := deleteDoc(t, ts, fmt.Sprint(id))
			if want := http.StatusOK; !live[id] {
				want = http.StatusNotFound
				if code != want {
					t.Fatalf("op %d delete absent: %d, want %d", i, code, want)
				}
			} else if code != want {
				t.Fatalf("op %d delete live: %d, want %d", i, code, want)
			}
			delete(live, id)
		default:
			qr, code := getQuery(t, ts, probe)
			if code != http.StatusOK {
				t.Fatalf("op %d query: %d", i, code)
			}
			if qr.Count != len(live) {
				t.Fatalf("op %d: served %d docs, reference has %d live", i, qr.Count, len(live))
			}
			for _, d := range qr.Docs {
				if !live[d] {
					t.Fatalf("op %d: resurrected doc %d", i, d)
				}
			}
		}
	}
	// Fold everything into the base and re-check.
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	qr, _ := getQuery(t, ts, probe)
	if qr.Count != len(live) {
		t.Fatalf("post-compaction: %d docs, want %d", qr.Count, len(live))
	}
}

// TestServeExplain checks explain=1: the response carries the executed
// physical plan, results are unchanged, and cache hits still explain.
func TestServeExplain(t *testing.T) {
	corpus := testCorpus(t)
	for _, st := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		t.Run(st.String(), func(t *testing.T) {
			ts, _ := testServerStorage(t, corpus, 2, st)
			q := workload.TermName(0) + " AND " + workload.TermName(7)
			plain, code := getQuery(t, ts, q)
			if code != http.StatusOK {
				t.Fatalf("plain query: HTTP %d", code)
			}
			if plain.Plan != "" {
				t.Error("plan rendered without explain=1")
			}
			resp, err := http.Get(ts.URL + "/query?" + url.Values{"q": {q}, "explain": {"1"}, "limit": {"-1"}}.Encode())
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var qr queryResponse
			if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
				t.Fatal(err)
			}
			if qr.Count != plain.Count || !sets.Equal(qr.Docs, plain.Docs) {
				t.Errorf("explain changed the result: %d docs vs %d", qr.Count, plain.Count)
			}
			if !strings.Contains(qr.Plan, "AND kernel=") || !strings.Contains(qr.Plan, "term "+workload.TermName(0)) {
				t.Errorf("plan missing kernel/operand lines:\n%s", qr.Plan)
			}
			if !qr.Cached {
				t.Error("second request (explain) should have hit the cache")
			}
		})
	}
}

// TestServeSyntaxErrorOffset pins the satellite: a 400 for a malformed
// query names the byte offset of the offending token.
func TestServeSyntaxErrorOffset(t *testing.T) {
	ts, _ := testServer(t, testCorpus(t), 1)
	resp, err := http.Get(ts.URL + "/query?" + url.Values{"q": {"a AND AND b"}}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	// "a AND AND b": the surplus AND starts at byte 6.
	if !strings.Contains(er.Error, "offset 6") {
		t.Errorf("400 body %q does not name offset 6", er.Error)
	}
}

// TestServeQueryBatch drives POST /query/batch: per-item results match
// individual /query calls, a parse error stays in its slot, and the limit
// applies per query.
func TestServeQueryBatch(t *testing.T) {
	ts, _ := testServer(t, testCorpus(t), 2)
	t0, t1, t2 := workload.TermName(0), workload.TermName(1), workload.TermName(2)
	queries := []string{
		t0 + " AND " + t1,
		t1 + " " + t0, // same canonical form
		t2 + " OR " + t0,
		"NOT " + t0, // unbounded: per-item error
	}
	body, _ := json.Marshal(map[string]any{"queries": queries, "limit": 5})
	resp, err := http.Post(ts.URL+"/query/batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d, want 200", resp.StatusCode)
	}
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(br.Results), len(queries))
	}
	for i := 0; i < 3; i++ {
		item := br.Results[i]
		if item.Error != "" {
			t.Fatalf("query %d: %s", i, item.Error)
		}
		want, code := getQuery(t, ts, queries[i])
		if code != http.StatusOK {
			t.Fatalf("query %d: HTTP %d", i, code)
		}
		if item.Count != want.Count {
			t.Errorf("query %d: batch count %d, single count %d", i, item.Count, want.Count)
		}
		if item.Count > 5 && (!item.Truncated || len(item.Docs) != 5) {
			t.Errorf("query %d: limit not applied (%d docs, truncated=%v)", i, len(item.Docs), item.Truncated)
		}
	}
	if br.Results[0].Normalized != br.Results[1].Normalized {
		t.Error("commuted queries did not share a canonical form")
	}
	if br.Results[3].Error == "" {
		t.Error("unbounded query did not report an error")
	}

	// Malformed bodies and empty batches are request-level 400s.
	for _, bad := range []string{"{", `{"queries": []}`, `{"queries": ["a"], "limit": -2}`} {
		resp, err := http.Post(ts.URL+"/query/batch", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: HTTP %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestPercentile(t *testing.T) {
	durs := make([]time.Duration, 100)
	for i := range durs {
		durs[i] = time.Duration(i+1) * time.Millisecond
	}
	if got := percentile(durs, 50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := percentile(durs, 99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := percentile(durs[:1], 99); got != 1*time.Millisecond {
		t.Fatalf("p99 of singleton = %v", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Fatalf("p50 of empty = %v", got)
	}
}

// TestSnapshotRestartServesIdentically pins the -snapshot-dir contract at
// the HTTP layer: a server whose engine took live mutations is snapshotted,
// a second engine restores the snapshot (the restart), and both servers must
// answer the same queries with the same documents — including the mutated
// ones.
func TestSnapshotRestartServesIdentically(t *testing.T) {
	corpus := testCorpus(t)
	ts, eng := testServer(t, corpus, 2)

	post := func(body string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/index/doc", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("add doc: status %d", resp.StatusCode)
		}
	}
	post(`{"doc_id": 900001, "terms": ["t0", "t1"]}`)
	post(`{"doc_id": 900002, "terms": ["t0"]}`)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/index/doc/900002", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete doc: status %d", resp.StatusCode)
	}

	dir := t.TempDir()
	if err := eng.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	restored := engine.New(engine.Config{Shards: 2, CacheSize: 256})
	if err := restored.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(newServer(restored).handler())
	defer ts2.Close()

	for _, q := range []string{"t0", "t0 AND t1", "t1 OR t2", "t0 AND NOT t3"} {
		a, code := getQuery(t, ts, q)
		if code != http.StatusOK {
			t.Fatalf("%q: status %d", q, code)
		}
		b, code := getQuery(t, ts2, q)
		if code != http.StatusOK {
			t.Fatalf("%q: restored status %d", q, code)
		}
		if !sets.Equal(a.Docs, b.Docs) {
			t.Fatalf("%q: restored server returned %d docs, original %d", q, len(b.Docs), len(a.Docs))
		}
	}
	if _, code := getQuery(t, ts2, "t0 AND t1"); code != http.StatusOK {
		t.Fatal("restored server not serving")
	}
}
