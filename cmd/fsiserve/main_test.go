package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"fastintersect"
	"fastintersect/internal/engine"
	"fastintersect/internal/invindex"
	"fastintersect/internal/sets"
	"fastintersect/internal/workload"
)

func testCorpus(t testing.TB) *workload.Real {
	t.Helper()
	return workload.NewReal(workload.RealConfig{
		NumDocs:    20_000,
		NumTerms:   2_000,
		NumQueries: 300,
		ZipfS:      0.7,
		TopDFFrac:  0.2,
		HotFrac:    0.08,
		HotWeight:  8,
		Seed:       0xFEED,
	})
}

func testServer(t testing.TB, corpus *workload.Real, shards int) (*httptest.Server, *engine.Engine) {
	return testServerStorage(t, corpus, shards, invindex.StorageRaw)
}

func testServerStorage(t testing.TB, corpus *workload.Real, shards int, st invindex.Storage) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng := engine.New(engine.Config{Shards: shards, CacheSize: 256, Storage: st})
	if err := loadCorpus(eng, corpus); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(eng).handler())
	t.Cleanup(ts.Close)
	return ts, eng
}

func getQuery(t *testing.T, ts *httptest.Server, q string) (queryResponse, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/query?" + url.Values{"q": {q}, "limit": {"-1"}}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return qr, resp.StatusCode
}

// TestServeMatchesDirectIntersection is the acceptance test: served /query
// results over a >= 4-shard index must equal fastintersect.IntersectSorted
// run directly over the same posting lists, under concurrent requests.
func TestServeMatchesDirectIntersection(t *testing.T) {
	corpus := testCorpus(t)
	ts, _ := testServer(t, corpus, 5)

	// Preprocess each referenced posting list once, directly via the
	// public API — the ground truth the served results must match.
	prepped := map[int]*fastintersect.List{}
	var mu sync.Mutex
	direct := func(q workload.Query) []uint32 {
		mu.Lock()
		defer mu.Unlock()
		lists := make([]*fastintersect.List, len(q.Terms))
		for i, term := range q.Terms {
			l, ok := prepped[term]
			if !ok {
				var err error
				l, err = fastintersect.Preprocess(corpus.Postings[term])
				if err != nil {
					t.Errorf("preprocess term %d: %v", term, err)
					return nil
				}
				prepped[term] = l
			}
			lists[i] = l
		}
		out, err := fastintersect.IntersectSorted(lists...)
		if err != nil {
			t.Errorf("direct intersect: %v", err)
			return nil
		}
		return out
	}

	queries := corpus.Queries[:100]
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(queries); i += 8 {
				q := queries[i]
				names := make([]string, len(q.Terms))
				for j, term := range q.Terms {
					names[j] = workload.TermName(term)
				}
				qs := strings.Join(names, " AND ")
				qr, code := getQuery(t, ts, qs)
				if code != http.StatusOK {
					t.Errorf("query %q: status %d", qs, code)
					return
				}
				want := direct(q)
				if !sets.Equal(qr.Docs, want) {
					t.Errorf("query %q: served %d docs, direct %d", qs, len(qr.Docs), len(want))
					return
				}
				if qr.Count != len(want) {
					t.Errorf("query %q: count %d != %d", qs, qr.Count, len(want))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestServeCompressedStorage runs the same service over compressed posting
// storage: served results must match the raw-storage server query for
// query, and /stats must expose the per-encoding posting accounting.
func TestServeCompressedStorage(t *testing.T) {
	corpus := testCorpus(t)
	tsRaw, _ := testServer(t, corpus, 3)
	tsComp, _ := testServerStorage(t, corpus, 3, invindex.StorageCompressed)

	queries := []string{
		workload.TermName(0),
		workload.TermName(0) + " AND " + workload.TermName(3),
		workload.TermName(1) + " AND (" + workload.TermName(5) + " OR " + workload.TermName(9) + ")",
		workload.TermName(2) + " AND NOT " + workload.TermName(4),
	}
	for _, q := range queries {
		rr, code := getQuery(t, tsRaw, q)
		if code != http.StatusOK {
			t.Fatalf("raw %q: status %d", q, code)
		}
		cr, code := getQuery(t, tsComp, q)
		if code != http.StatusOK {
			t.Fatalf("compressed %q: status %d", q, code)
		}
		if !sets.Equal(rr.Docs, cr.Docs) {
			t.Fatalf("storage changed result of %q: raw %d docs, compressed %d docs",
				q, len(rr.Docs), len(cr.Docs))
		}
	}

	resp, err := http.Get(tsComp.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Storage != "compressed" {
		t.Fatalf("storage = %q", st.Storage)
	}
	if st.Postings.Total == 0 || st.Postings.StoredBytes >= st.Postings.RawBytes {
		t.Fatalf("postings accounting = %+v", st.Postings)
	}
	if len(st.Postings.Encodings) < 2 {
		t.Fatalf("expected multiple encodings, got %v", st.Postings.Encodings)
	}
}

// TestServeBooleanOperators verifies OR/NOT queries against reference set
// algebra over the raw posting lists.
func TestServeBooleanOperators(t *testing.T) {
	corpus := testCorpus(t)
	ts, _ := testServer(t, corpus, 4)
	p := func(term int) []uint32 { return corpus.Postings[term] }
	name := workload.TermName

	cases := []struct {
		q    string
		want []uint32
	}{
		{
			fmt.Sprintf("%s OR %s", name(10), name(11)),
			sets.Union(p(10), p(11)),
		},
		{
			fmt.Sprintf("%s AND NOT %s", name(5), name(6)),
			sets.Difference(p(5), p(6)),
		},
		{
			fmt.Sprintf("(%s AND %s) OR %s", name(3), name(4), name(900)),
			sets.Union(sets.IntersectReference(p(3), p(4)), p(900)),
		},
		{
			fmt.Sprintf("%s AND (%s OR %s)", name(7), name(8), name(9)),
			sets.IntersectReference(p(7), sets.Union(p(8), p(9))),
		},
	}
	for _, c := range cases {
		qr, code := getQuery(t, ts, c.q)
		if code != http.StatusOK {
			t.Fatalf("query %q: status %d", c.q, code)
		}
		if !sets.Equal(qr.Docs, c.want) {
			t.Fatalf("query %q: served %d docs, reference %d", c.q, len(qr.Docs), len(c.want))
		}
	}
}

func TestServeEndpoints(t *testing.T) {
	corpus := testCorpus(t)
	ts, _ := testServer(t, corpus, 4)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// A couple of queries so /stats has something to report.
	if _, code := getQuery(t, ts, workload.TermName(42)); code != http.StatusOK {
		t.Fatalf("warm-up query failed: %d", code)
	}
	if _, code := getQuery(t, ts, workload.TermName(42)); code != http.StatusOK {
		t.Fatalf("warm-up query failed: %d", code)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 || st.Queries < 2 || st.Cache.Hits < 1 || st.Docs != 20_000 {
		t.Fatalf("stats = %+v", st)
	}

	// Bad queries are 400s with a JSON error.
	for _, bad := range []string{"", "NOT x", "a AND ("} {
		_, code := getQuery(t, ts, bad)
		if code != http.StatusBadRequest {
			t.Fatalf("query %q: status %d, want 400", bad, code)
		}
	}

	// Truncation contract.
	respT, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape(workload.TermName(0)) + "&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	defer respT.Body.Close()
	var qr queryResponse
	if err := json.NewDecoder(respT.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Docs) != 5 || !qr.Truncated || qr.Count <= 5 {
		t.Fatalf("truncated response = docs:%d truncated:%v count:%d", len(qr.Docs), qr.Truncated, qr.Count)
	}
}

func TestQueryStreamParsesAndServes(t *testing.T) {
	corpus := testCorpus(t)
	ts, _ := testServer(t, corpus, 4)
	stream := corpus.QueryStream(60, workload.StreamConfig{OrFrac: 0.3, NotFrac: 0.3, Seed: 7})
	if len(stream) != 60 {
		t.Fatalf("stream length %d", len(stream))
	}
	for _, q := range stream {
		if _, code := getQuery(t, ts, q); code != http.StatusOK {
			t.Fatalf("stream query %q: status %d", q, code)
		}
	}
}

func TestPercentile(t *testing.T) {
	durs := make([]time.Duration, 100)
	for i := range durs {
		durs[i] = time.Duration(i+1) * time.Millisecond
	}
	if got := percentile(durs, 50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := percentile(durs, 99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := percentile(durs[:1], 99); got != 1*time.Millisecond {
		t.Fatalf("p99 of singleton = %v", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Fatalf("p50 of empty = %v", got)
	}
}
