// Command fsiserve serves conjunctive/boolean queries over a sharded
// in-memory inverted index built on the fastintersect library — the
// query-serving system the paper's search-engine motivation points at.
//
// On startup it generates a synthetic corpus (the same simulated-real
// workload the benchmark harness uses), hash-partitions it across shards,
// and serves an HTTP JSON API:
//
//	GET /query?q=a+AND+b&limit=10   boolean query (AND/OR/NOT, parens)
//	GET /query?q=...&explain=1      ... plus the estimated physical plan
//	GET /query?q=...&explain=analyze ... executed plan with measured rows/time per operator
//	POST /query/batch               many queries in one call (shared planning)
//	POST /index/doc                 add/update a document (live, no rebuild)
//	DELETE /index/doc/{id}          delete a document (tombstoned immediately)
//	GET /stats                      engine + cache + delta/compaction counters
//	GET /metrics                    Prometheus text: counters, latency/stage histograms, per-kernel series
//	GET /debug/slowlog              ring buffer of queries slower than -slowlog-ms
//	GET /healthz                    liveness
//
// -pprof additionally mounts net/http/pprof under /debug/pprof/.
//
// With -load N it instead replays N queries from the synthetic query
// stream through the engine at -concurrency workers and reports QPS and
// latency percentiles; -batch M submits the replay through the batch path
// (QueryBatch) in chunks of M:
//
//	fsiserve -shards 8 -load 50000 -concurrency 16
//	fsiserve -load 50000 -batch 64  # batched replay (shared planning per chunk)
//	fsiserve -addr :8466            # then: curl 'localhost:8466/query?q=t0+AND+t17'
//
// With -snapshot-dir D the whole segment tier is restored from D at startup
// when a snapshot exists there (skipping the index build) and saved back to
// D on graceful shutdown.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"slices"
	"strconv"
	"sync"
	"syscall"
	"time"

	"fastintersect"
	"fastintersect/internal/admission"
	"fastintersect/internal/engine"
	"fastintersect/internal/invindex"
	"fastintersect/internal/obs"
	"fastintersect/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", ":8466", "listen address (serve mode)")
		shards      = flag.Int("shards", 4, "index shards")
		workers     = flag.Int("workers", 0, "shard-query worker pool size (0 = GOMAXPROCS)")
		cacheSize   = flag.Int("cache", 4096, "result-cache entries (0 disables)")
		algoName    = flag.String("algo", "Auto", "intersection algorithm for conjunctions (raw storage only)")
		storageName = flag.String("storage", "raw", "posting storage: 'raw' or 'compressed' (adaptive per-list encoding)")
		docs        = flag.Uint("docs", 200_000, "synthetic corpus: number of documents")
		terms       = flag.Int("terms", 20_000, "synthetic corpus: vocabulary size")
		queries     = flag.Int("queries", 2_000, "synthetic corpus: base query count")
		seed        = flag.Uint64("seed", 0xC0FFEE, "corpus seed")
		compactAt   = flag.Int("compact", 50_000, "delta postings per shard that trigger a background compaction (0 = never compact automatically)")
		load        = flag.Int("load", 0, "load-generator mode: replay N queries and exit (0 = serve)")
		concurrency = flag.Int("concurrency", 8, "load-generator worker goroutines")
		batchN      = flag.Int("batch", 0, "load-generator: submit queries through the batch path (QueryBatch) in chunks of this size (0 or 1 = one Query call per query)")
		snapDir     = flag.String("snapshot-dir", "", "segment-snapshot directory: restore the whole tier from it at startup when a snapshot exists (skipping the index build), and save the tier into it on graceful shutdown")
		orFrac      = flag.Float64("or", 0.10, "load-generator fraction of queries with an OR branch")
		notFrac     = flag.Float64("not", 0.05, "load-generator fraction of queries with a NOT term")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		slowlogMS   = flag.Int("slowlog-ms", 250, "slow-query log threshold in milliseconds (0 disables /debug/slowlog)")
		traceSample = flag.Int("trace-sample", 0, "trace 1 in N queries with stage/operator timing (0 = engine default of 64)")
		feedback    = flag.Bool("plan-feedback", true, "adaptive planning: harvest sampled per-operator actuals and re-fit per-kernel cost corrections at runtime")

		maxInflight = flag.Int("max-inflight", 0, "admission: max concurrently executing requests (0 = 2×GOMAXPROCS)")
		queueDepth  = flag.Int("queue-depth", 0, "admission: max requests queued for a slot (0 = 4×max-inflight, negative = no queue)")
		deadlineMS  = flag.Int("default-deadline-ms", 2000, "default per-request deadline in milliseconds (0 = none); requests override with ?deadline_ms=")
		clientQPS   = flag.Float64("client-qps", 0, "admission: per-client token-bucket refill rate (0 = no quotas)")
		clientBurst = flag.Float64("client-burst", 0, "admission: per-client token-bucket capacity (0 = 2×client-qps)")
	)
	flag.Parse()

	algo, err := fastintersect.ParseAlgorithm(*algoName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsiserve: %v\n", err)
		os.Exit(2)
	}
	storage, err := invindex.ParseStorage(*storageName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsiserve: %v\n", err)
		os.Exit(2)
	}

	if *docs > math.MaxUint32 {
		fmt.Fprintf(os.Stderr, "fsiserve: -docs %d exceeds the uint32 docID space\n", *docs)
		os.Exit(2)
	}
	// The corpus generator samples up to 5 distinct terms per query from a
	// head band of the vocabulary; tiny vocabularies cannot satisfy that.
	if *terms < 16 {
		fmt.Fprintf(os.Stderr, "fsiserve: -terms must be at least 16 (got %d)\n", *terms)
		os.Exit(2)
	}
	cfg := workload.SmallRealConfig()
	cfg.NumDocs = uint32(*docs)
	cfg.NumTerms = *terms
	cfg.NumQueries = *queries
	cfg.Seed = *seed
	fmt.Fprintf(os.Stderr, "fsiserve: generating corpus (%d docs, %d terms)...\n", cfg.NumDocs, cfg.NumTerms)
	genStart := time.Now()
	corpus := workload.NewReal(cfg)

	eng := engine.New(engine.Config{
		Shards:           *shards,
		Workers:          *workers,
		CacheSize:        *cacheSize,
		Algorithm:        algo,
		Storage:          storage,
		CompactThreshold: *compactAt,
		TraceSample:      *traceSample,
		PlanFeedback:     *feedback,
	})
	if *snapDir != "" && engine.SnapshotExists(*snapDir) {
		// Restart path: the serialized tier (base, frozen segments, active
		// segment, tombstones) replaces the corpus index build. Only the base
		// pays a parallel re-build; segments load as-is.
		if err := eng.LoadSnapshot(*snapDir); err != nil {
			fmt.Fprintf(os.Stderr, "fsiserve: restoring snapshot from %s: %v\n", *snapDir, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fsiserve: restored segment snapshot from %s\n", *snapDir)
	} else if err := loadCorpus(eng, corpus); err != nil {
		fmt.Fprintf(os.Stderr, "fsiserve: %v\n", err)
		os.Exit(1)
	}
	st := eng.Stats()
	fmt.Fprintf(os.Stderr, "fsiserve: indexed %d docs, %d (term,shard) postings across %d shards (%s storage, %.2f B/posting) in %v\n",
		st.Docs, st.Terms, st.Shards, st.Storage, st.Postings.BytesPerPosting,
		time.Since(genStart).Round(time.Millisecond))

	if *load > 0 {
		runLoad(eng, corpus, *load, *concurrency, *batchN, workload.StreamConfig{
			OrFrac: *orFrac, NotFrac: *notFrac, Seed: *seed + 1,
		})
		return
	}
	opts := serverOptions{
		snapshotDir: *snapDir,
		pprof:       *pprofOn,
		admission: admission.Config{
			MaxInflight: *maxInflight,
			QueueDepth:  *queueDepth,
			ClientQPS:   *clientQPS,
			ClientBurst: *clientBurst,
		},
		defaultDeadline: time.Duration(*deadlineMS) * time.Millisecond,
	}
	if *slowlogMS > 0 {
		opts.slow = obs.NewSlowLog(time.Duration(*slowlogMS)*time.Millisecond, 128)
	}
	serve(eng, *addr, opts)
}

// loadCorpus installs the simulated-real corpus, term-major. Stats().Docs
// afterwards reports the distinct docIDs actually appearing in a posting
// list (documents the generator never sampled are not indexed).
func loadCorpus(eng *engine.Engine, corpus *workload.Real) error {
	b := eng.NewBuilder()
	for t, postings := range corpus.Postings {
		if err := b.AddPosting(workload.TermName(t), postings); err != nil {
			return err
		}
	}
	return eng.Install(b)
}

// serve runs the HTTP API until SIGINT/SIGTERM, then drains: the admission
// gate stops admitting (queued work is shed, inflight work finishes), then
// the HTTP server closes its connections.
func serve(eng *engine.Engine, addr string, opts serverOptions) {
	s := newServer(eng, opts)
	srv := &http.Server{
		Addr:         addr,
		Handler:      s.handler(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "fsiserve: listening on %s\n", addr)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "fsiserve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "fsiserve: shutting down...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.gate.Drain(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "fsiserve: drain: %v\n", err)
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "fsiserve: shutdown: %v\n", err)
		os.Exit(1)
	}
	if opts.snapshotDir != "" {
		// The gate has drained, so the tier is quiescent: the snapshot is the
		// exact state the next -snapshot-dir start will serve.
		if err := eng.SaveSnapshot(opts.snapshotDir); err != nil {
			fmt.Fprintf(os.Stderr, "fsiserve: saving snapshot to %s: %v\n", opts.snapshotDir, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fsiserve: saved segment snapshot to %s\n", opts.snapshotDir)
	}
}

// serverOptions configures the optional observability surfaces and the
// admission layer.
type serverOptions struct {
	slow  *obs.SlowLog // nil disables slow-query recording
	pprof bool         // mount net/http/pprof under /debug/pprof/
	// snapshotDir, when set, receives a segment snapshot of the whole tier
	// after the graceful-shutdown drain completes.
	snapshotDir string

	// admission sizes the gate; the zero value takes the package defaults
	// (2×GOMAXPROCS inflight, 4× that queued, no quotas).
	admission admission.Config
	// defaultDeadline bounds requests that do not pass deadline_ms
	// (0 = unbounded).
	defaultDeadline time.Duration
}

// overloadReasons enumerates the reason labels of
// fsi_overload_responses_total and /debug/slowlog's reason field: admission
// outcomes, plus requests that were admitted but ran out of deadline during
// execution.
var overloadReasons = []string{
	"rejected_quota", "rejected_deadline",
	"shed_queue_full", "shed_queue_timeout", "shed_draining",
	"deadline", "canceled",
}

// server wires the engine to HTTP.
type server struct {
	eng             *engine.Engine
	slow            *obs.SlowLog
	pprof           bool
	started         time.Time
	gate            *admission.Gate
	coal            *admission.Coalescer[*engine.Result]
	defaultDeadline time.Duration
	overload        map[string]*obs.Counter // 429/503 responses by reason
}

func newServer(eng *engine.Engine, opts ...serverOptions) *server {
	var o serverOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	reg := eng.Metrics()
	s := &server{
		eng:             eng,
		slow:            o.slow,
		pprof:           o.pprof,
		started:         time.Now(),
		gate:            admission.NewGate(o.admission, reg),
		coal:            admission.NewCoalescer[*engine.Result](reg),
		defaultDeadline: o.defaultDeadline,
		overload:        make(map[string]*obs.Counter, len(overloadReasons)),
	}
	for _, reason := range overloadReasons {
		s.overload[reason] = reg.Counter(
			`fsi_overload_responses_total{reason="`+reason+`"}`,
			"Requests answered 429/503 under overload control, by reason.")
	}
	reg.GaugeFunc("fsi_uptime_seconds",
		"Seconds since the serving process started.",
		func() float64 { return time.Since(s.started).Seconds() })
	return s
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	s.route(mux, "GET /query", "/query", s.handleQuery)
	s.route(mux, "POST /query/batch", "/query/batch", s.handleQueryBatch)
	s.route(mux, "GET /stats", "/stats", s.handleStats)
	s.route(mux, "POST /index/doc", "/index/doc", s.handleAddDoc)
	s.route(mux, "DELETE /index/doc/{id}", "/index/doc/:id", s.handleDeleteDoc)
	s.route(mux, "GET /debug/slowlog", "/debug/slowlog", s.handleSlowlog)
	// /metrics and /healthz stay uninstrumented: scrape and liveness traffic
	// would otherwise dominate the per-endpoint series they exist to expose.
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// route registers h instrumented with per-endpoint request/error counters
// and a latency histogram, all on the engine's metrics registry so one
// /metrics scrape covers engine and HTTP series alike.
func (s *server) route(mux *http.ServeMux, pattern, path string, h http.HandlerFunc) {
	reg := s.eng.Metrics()
	lbl := `{path="` + path + `"}`
	reqs := reg.Counter("fsi_http_requests_total"+lbl, "HTTP requests served, by endpoint.")
	errs := reg.Counter("fsi_http_errors_total"+lbl, "HTTP responses with status >= 400, by endpoint.")
	lat := reg.Histogram("fsi_http_request_seconds"+lbl, "HTTP request latency, by endpoint.")
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		reqs.Inc()
		if sw.code >= 400 {
			errs.Inc()
		}
		lat.Observe(time.Since(t0))
	})
}

// statusWriter captures the response status for the error counter; an
// unset status means an implicit 200 from the first Write.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// handleMetrics renders every registered series in the Prometheus text
// exposition format (version 0.0.4 — the plain-text contract scrapers
// accept without a client library on our side).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.eng.Metrics().WritePrometheus(w)
}

// slowlogResponse is the GET /debug/slowlog body. Entries are newest
// first; Total counts every slow query ever seen, including entries the
// ring has since evicted.
type slowlogResponse struct {
	ThresholdMS int64           `json:"threshold_ms"`
	Total       uint64          `json:"total"`
	Entries     []obs.SlowEntry `json:"entries"`
}

func (s *server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	entries := s.slow.Snapshot()
	if entries == nil {
		entries = []obs.SlowEntry{}
	}
	writeJSON(w, http.StatusOK, slowlogResponse{
		ThresholdMS: s.slow.Threshold().Milliseconds(),
		Total:       s.slow.Total(),
		Entries:     entries,
	})
}

type queryResponse struct {
	Query      string   `json:"query"`
	Normalized string   `json:"normalized"`
	Count      int      `json:"count"`
	Docs       []uint32 `json:"docs"`
	Truncated  bool     `json:"truncated"`
	Cached     bool     `json:"cached"`
	// Coalesced marks a response served by attaching to an identical
	// in-flight query's execution rather than running its own.
	Coalesced bool  `json:"coalesced,omitempty"`
	ElapsedUS int64 `json:"elapsed_us"`
	// Plan is the physical plan (operator tree with kernels and cost
	// estimates), present when the request asked for explain=1; with
	// explain=analyze it additionally carries measured rows and time per
	// operator plus stage and per-shard timings.
	Plan string `json:"plan,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// requestContext derives the request's execution context: ?deadline_ms=
// overrides the server default (0 = explicitly unbounded). The returned
// context is always rooted at r.Context(), so a client disconnect cancels
// execution even without a deadline.
func (s *server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.defaultDeadline
	if ds := r.URL.Query().Get("deadline_ms"); ds != "" {
		v, err := strconv.Atoi(ds)
		if err != nil || v < 0 {
			return nil, nil, fmt.Errorf("bad deadline_ms %q (want 0 for none or a positive millisecond budget)", ds)
		}
		d = time.Duration(v) * time.Millisecond
	}
	if d <= 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// clientKey identifies the requester for per-client quotas: the explicit
// ?client= tag when present (load balancers forward the originating
// principal this way), otherwise the peer address without its port.
func clientKey(r *http.Request) string {
	if c := r.URL.Query().Get("client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// overloadReason classifies an error as an overload outcome (one of
// overloadReasons) or "" for ordinary failures.
func overloadReason(err error) string {
	switch {
	case errors.Is(err, admission.ErrQuotaExceeded):
		return "rejected_quota"
	case errors.Is(err, admission.ErrDeadlineInfeasible):
		return "rejected_deadline"
	case errors.Is(err, admission.ErrQueueFull):
		return "shed_queue_full"
	case errors.Is(err, admission.ErrQueueTimeout):
		return "shed_queue_timeout"
	case errors.Is(err, admission.ErrDraining):
		return "shed_draining"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	}
	return ""
}

// writeQueryError maps a query-path failure to its status code, records it
// in the slowlog (overload outcomes carry a reason and bypass the slowness
// threshold) and counts it. Overload responses advertise Retry-After: quota
// rejections are the client's budget (429), everything else is server
// pressure (503).
func (s *server) writeQueryError(w http.ResponseWriter, q string, start time.Time, err error) {
	reason := overloadReason(err)
	s.slow.Record(obs.SlowEntry{
		Time: start, Query: q,
		DurationUS: time.Since(start).Microseconds(),
		Error:      err.Error(),
		Reason:     reason,
	})
	code := http.StatusBadRequest
	switch {
	case reason == "rejected_quota":
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case reason != "":
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, engine.ErrNotBuilt):
		code = http.StatusServiceUnavailable
	}
	if reason != "" {
		s.overload[reason].Inc()
	}
	writeJSON(w, code, errorResponse{err.Error()})
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	limit := 100
	if ls := r.URL.Query().Get("limit"); ls != "" {
		v, err := strconv.Atoi(ls)
		if err != nil || v < -1 {
			// -1 is the documented "no limit"; 0 means count-only; anything
			// below -1 used to silently mean "unlimited" and is now rejected.
			writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("bad limit %q (want -1 for unlimited, 0 for count-only, or a positive cap)", ls)})
			return
		}
		limit = v
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	defer cancel()
	client := clientKey(r)
	start := time.Now()
	var (
		res       *engine.Result
		planStr   string
		coalesced bool
	)
	switch explain := r.URL.Query().Get("explain"); explain {
	case "", "0":
		// Plain queries coalesce: concurrent duplicates of one canonical
		// form at one index generation share a single execution. The leader
		// acquires admission inside the coalesced function — followers ride
		// its slot, so a hot-key burst costs one inflight slot and one
		// quota token (the leader's), not one per duplicate. Parse errors
		// are caught by canonicalization, before admission: malformed
		// queries never consume gate capacity.
		var canon string
		canon, err = s.eng.Canonicalize(q)
		if err != nil {
			break
		}
		// limit=0 takes the engine's count-only fast path (no merged-result
		// materialization). Count executions coalesce among themselves but
		// never with materializing duplicates — a count result carries no
		// docs to hand a materializing follower — so the key is prefixed.
		key := admission.Key{Canon: canon, Gen: s.eng.Generation()}
		run := s.eng.QueryContext
		if limit == 0 {
			key.Canon = "#count:" + canon
			run = s.eng.QueryCountContext
		}
		res, coalesced, err = s.coal.Do(ctx, key,
			func() (*engine.Result, error) {
				tk, aerr := s.gate.Acquire(ctx, client)
				if aerr != nil {
					return nil, aerr
				}
				defer s.gate.Release(tk)
				return run(ctx, q)
			})
	case "1", "analyze":
		// Explain output is per-request diagnostics (analyze re-executes
		// with tracing), so it is admitted but never coalesced.
		var tk admission.Ticket
		tk, err = s.gate.Acquire(ctx, client)
		if err != nil {
			break
		}
		if explain == "1" {
			res, planStr, err = s.eng.ExplainContext(ctx, q)
		} else {
			res, planStr, err = s.eng.ExplainAnalyzeContext(ctx, q)
		}
		s.gate.Release(tk)
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("bad explain %q (want 1 for the estimated plan or analyze for measured execution)", explain)})
		return
	}
	if err != nil {
		// Syntax errors carry the byte offset of the offending token in the
		// message ("syntax error at offset N: ..."), so 400 bodies point at
		// the position in the submitted query; admission and deadline
		// failures map to 429/503 with Retry-After.
		s.writeQueryError(w, q, start, err)
		return
	}
	s.slow.Record(obs.SlowEntry{
		Time: start, Query: q, Normalized: res.Normalized,
		DurationUS: time.Since(start).Microseconds(),
		Rows:       res.Count,
		Cached:     res.Cached,
	})
	docs := res.Docs
	truncated := false
	if limit >= 0 && len(docs) > limit {
		docs = docs[:limit]
		truncated = true
	}
	if docs == nil {
		docs = []uint32{} // render "docs": [] rather than null
	}
	// Count-only responses report matching docs they did not materialize.
	if limit == 0 && res.Count > 0 {
		truncated = true
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Query:      q,
		Normalized: res.Normalized,
		Count:      res.Count,
		Docs:       docs,
		Truncated:  truncated,
		Cached:     res.Cached,
		Coalesced:  coalesced,
		ElapsedUS:  time.Since(start).Microseconds(),
		Plan:       planStr,
	})
}

// batchRequest is the POST /query/batch body. Limit applies to every query
// with exactly /query's semantics: positive caps, 0 count-only, -1
// unlimited, omitted defaults to 100.
type batchRequest struct {
	Queries []string `json:"queries"`
	Limit   *int     `json:"limit,omitempty"`
	// DeadlineMS overrides the server's default deadline for the whole
	// batch (0 = explicitly none).
	DeadlineMS *int `json:"deadline_ms,omitempty"`
}

// batchItem is one query's slot in the batch response. Error is set instead
// of the result fields when that query failed to parse or evaluate.
type batchItem struct {
	Query      string   `json:"query"`
	Normalized string   `json:"normalized,omitempty"`
	Count      int      `json:"count"`
	Docs       []uint32 `json:"docs,omitempty"`
	Truncated  bool     `json:"truncated,omitempty"`
	Cached     bool     `json:"cached,omitempty"`
	Error      string   `json:"error,omitempty"`
}

type batchResponse struct {
	Results   []batchItem `json:"results"`
	ElapsedUS int64       `json:"elapsed_us"`
}

// handleQueryBatch executes many queries as one engine batch: queries that
// normalize to the same canonical form are planned and evaluated once, and
// all cache misses share per-shard execution contexts (and their
// decoded-term memos). Per-query failures land in the matching result slot;
// only a malformed body or a missing index fails the whole request.
func (s *server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("bad body: %v", err)})
		return
	}
	if len(req.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{"queries must contain at least one query"})
		return
	}
	limit := 100 // the same default as GET /query
	if req.Limit != nil {
		if *req.Limit < -1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("bad limit %d (want -1 for unlimited, 0 for count-only, or a positive cap)", *req.Limit)})
			return
		}
		limit = *req.Limit
	}
	d := s.defaultDeadline
	if req.DeadlineMS != nil {
		if *req.DeadlineMS < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("bad deadline_ms %d (want 0 for none or a positive millisecond budget)", *req.DeadlineMS)})
			return
		}
		d = time.Duration(*req.DeadlineMS) * time.Millisecond
	}
	ctx := r.Context()
	if d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	start := time.Now()
	// One admission slot covers the whole batch: the engine already
	// serializes its shard work through the bounded worker pool, so a batch
	// is one unit of inflight load, not len(Queries) units.
	tk, err := s.gate.Acquire(ctx, clientKey(r))
	if err != nil {
		s.writeQueryError(w, fmt.Sprintf("<batch of %d>", len(req.Queries)), start, err)
		return
	}
	// limit=0 sends the whole batch down the engine's count-only path: no
	// merged result is materialized for any cache miss in the batch.
	var batch []engine.BatchResult
	if limit == 0 {
		batch = s.eng.QueryBatchCountContext(ctx, req.Queries)
	} else {
		batch = s.eng.QueryBatchContext(ctx, req.Queries)
	}
	s.gate.Release(tk)
	resp := batchResponse{Results: make([]batchItem, len(batch))}
	for i, br := range batch {
		item := batchItem{Query: req.Queries[i]}
		switch {
		case errors.Is(br.Err, engine.ErrNotBuilt):
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{br.Err.Error()})
			return
		case br.Err != nil:
			item.Error = br.Err.Error()
		default:
			docs := br.Result.Docs
			if limit >= 0 && len(docs) > limit {
				docs = docs[:limit]
				item.Truncated = true
			}
			item.Normalized = br.Result.Normalized
			item.Count = br.Result.Count
			item.Docs = docs
			item.Cached = br.Result.Cached
			if limit == 0 && item.Count > 0 {
				item.Truncated = true
			}
		}
		resp.Results[i] = item
	}
	resp.ElapsedUS = time.Since(start).Microseconds()
	writeJSON(w, http.StatusOK, resp)
}

// addDocRequest is the POST /index/doc body.
type addDocRequest struct {
	DocID uint32   `json:"doc_id"`
	Terms []string `json:"terms"`
}

// mutationResponse acknowledges an index mutation.
type mutationResponse struct {
	Status     string `json:"status"`
	DocID      uint32 `json:"doc_id"`
	Generation uint64 `json:"generation"`
}

// handleAddDoc makes a document queryable immediately: it lands in its home
// shard's delta segment (no rebuild) and supersedes any indexed version.
func (s *server) handleAddDoc(w http.ResponseWriter, r *http.Request) {
	var req addDocRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("bad body: %v", err)})
		return
	}
	terms := req.Terms[:0]
	for _, t := range req.Terms {
		if t != "" {
			terms = append(terms, t)
		}
	}
	if len(terms) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{"terms must contain at least one non-empty term"})
		return
	}
	if err := s.eng.AddDocument(req.DocID, terms); err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, engine.ErrNotBuilt) {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, mutationResponse{
		Status: "indexed", DocID: req.DocID, Generation: s.eng.Generation(),
	})
}

// handleDeleteDoc removes a document from query results immediately
// (tombstoned against the base segment, dropped from the delta). Unknown
// documents return 404.
func (s *server) handleDeleteDoc(w http.ResponseWriter, r *http.Request) {
	id64, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("bad doc id %q", r.PathValue("id"))})
		return
	}
	was, err := s.eng.DeleteDocument(uint32(id64))
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, engine.ErrNotBuilt) {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, errorResponse{err.Error()})
		return
	}
	if !was {
		writeJSON(w, http.StatusNotFound, errorResponse{fmt.Sprintf("doc %d is not indexed", id64)})
		return
	}
	writeJSON(w, http.StatusOK, mutationResponse{
		Status: "deleted", DocID: uint32(id64), Generation: s.eng.Generation(),
	})
}

type statsResponse struct {
	engine.Stats
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		Stats:         s.eng.Stats(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// runLoad replays a synthetic query stream through the engine and reports
// throughput and latency percentiles. With batch > 1 the stream is submitted
// through the engine's batch path (QueryBatch) in chunks of that size —
// duplicate canonical forms in a chunk are planned once and misses share
// execution contexts — and each query is charged its chunk's amortized
// latency.
func runLoad(eng *engine.Engine, corpus *workload.Real, n, concurrency, batch int, scfg workload.StreamConfig) {
	if concurrency < 1 {
		concurrency = 1
	}
	if batch < 1 {
		batch = 1
	}
	stream := corpus.QueryStream(n, scfg)
	if len(stream) == 0 {
		fmt.Fprintln(os.Stderr, "fsiserve: empty query stream (need -load > 0 and -queries > 0)")
		os.Exit(2)
	}
	n = len(stream)
	if batch > 1 {
		fmt.Fprintf(os.Stderr, "fsiserve: replaying %d queries at concurrency %d in batches of %d...\n", n, concurrency, batch)
	} else {
		fmt.Fprintf(os.Stderr, "fsiserve: replaying %d queries at concurrency %d...\n", n, concurrency)
	}
	latencies := make([]time.Duration, n)
	var queryErrs uint64
	var next int64
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := int(next)
				next += int64(batch)
				mu.Unlock()
				if i >= n {
					return
				}
				chunk := stream[i:min(i+batch, n)]
				qs := time.Now()
				var errs uint64
				if batch == 1 {
					if _, err := eng.Query(chunk[0]); err != nil {
						errs++
					}
					latencies[i] = time.Since(qs)
				} else {
					for _, br := range eng.QueryBatch(chunk) {
						if br.Err != nil {
							errs++
						}
					}
					per := time.Since(qs) / time.Duration(len(chunk))
					for j := range chunk {
						latencies[i+j] = per
					}
				}
				if errs > 0 {
					mu.Lock()
					queryErrs += errs
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	slices.Sort(latencies)
	st := eng.Stats()
	fmt.Printf("queries      %d\n", n)
	fmt.Printf("errors       %d\n", queryErrs)
	fmt.Printf("wall         %v\n", wall.Round(time.Millisecond))
	fmt.Printf("qps          %.0f\n", float64(n)/wall.Seconds())
	fmt.Printf("latency p50  %v\n", percentile(latencies, 50).Round(time.Microsecond))
	fmt.Printf("latency p90  %v\n", percentile(latencies, 90).Round(time.Microsecond))
	fmt.Printf("latency p99  %v\n", percentile(latencies, 99).Round(time.Microsecond))
	fmt.Printf("latency max  %v\n", latencies[len(latencies)-1].Round(time.Microsecond))
	fmt.Printf("cache        %d hits / %d misses / %d evictions\n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.Evictions)
}

// percentile returns the p-th percentile (nearest-rank) of sorted
// latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
