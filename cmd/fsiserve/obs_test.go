package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"fastintersect/internal/engine"
	"fastintersect/internal/obs"
	"fastintersect/internal/workload"
)

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue returns the sample for an exact series name (including any
// label set), or -1 when absent.
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	return -1
}

// TestServeMetrics pins the /metrics contract: well-formed exposition
// text, the promised engine and HTTP series, and counter monotonicity
// across traffic.
func TestServeMetrics(t *testing.T) {
	corpus := testCorpus(t)
	ts, _ := testServer(t, corpus, 2)

	q := workload.TermName(0) + " AND " + workload.TermName(7)
	for i := 0; i < 3; i++ {
		if _, code := getQuery(t, ts, q); code != http.StatusOK {
			t.Fatalf("query: HTTP %d", code)
		}
	}
	if _, code := getQuery(t, ts, "a AND ("); code != http.StatusBadRequest {
		t.Fatalf("malformed query: HTTP %d, want 400", code)
	}

	text := scrape(t, ts)

	// Shape: every non-comment, non-blank line is `name[{labels}] value`,
	// and each family has exactly one HELP and one TYPE header.
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)
	headers := map[string]int{}
	for _, line := range strings.Split(text, "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE "):
			headers[strings.Join(strings.Fields(line)[:3], " ")]++
		default:
			if !sample.MatchString(line) {
				t.Errorf("malformed sample line %q", line)
			}
		}
	}
	for h, n := range headers {
		if n != 1 {
			t.Errorf("header %q appears %d times", h, n)
		}
	}

	for _, want := range []string{
		"fsi_queries_total",
		"fsi_query_errors_total",
		"fsi_query_latency_seconds_count",
		"fsi_cache_hits_total",
		"fsi_index_generation",
		"fsi_uptime_seconds",
		`fsi_http_requests_total{path="/query"}`,
		`fsi_http_errors_total{path="/query"}`,
		`fsi_http_request_seconds_count{path="/query"}`,
	} {
		if metricValue(t, text, want) < 0 {
			t.Errorf("scrape missing series %s", want)
		}
	}
	if v := metricValue(t, text, `fsi_http_errors_total{path="/query"}`); v != 1 {
		t.Errorf(`fsi_http_errors_total{path="/query"} = %v, want 1 (the malformed query)`, v)
	}

	// Monotonicity: more traffic strictly raises the counters.
	q1 := metricValue(t, text, "fsi_queries_total")
	h1 := metricValue(t, text, `fsi_http_requests_total{path="/query"}`)
	for i := 0; i < 2; i++ {
		if _, code := getQuery(t, ts, q); code != http.StatusOK {
			t.Fatalf("query: HTTP %d", code)
		}
	}
	text = scrape(t, ts)
	if q2 := metricValue(t, text, "fsi_queries_total"); q2 != q1+2 {
		t.Errorf("fsi_queries_total %v -> %v, want +2", q1, q2)
	}
	if h2 := metricValue(t, text, `fsi_http_requests_total{path="/query"}`); h2 != h1+2 {
		t.Errorf("fsi_http_requests_total %v -> %v, want +2", h1, h2)
	}
}

// TestServeExplainAnalyze drives explain=analyze over HTTP: same result
// as a plain query, a plan carrying measured rows/time per operator, and
// a 400 for unknown explain values.
func TestServeExplainAnalyze(t *testing.T) {
	corpus := testCorpus(t)
	ts, _ := testServer(t, corpus, 3)
	q := workload.TermName(0) + " AND (" + workload.TermName(5) + " OR " + workload.TermName(9) + ")"
	plain, code := getQuery(t, ts, q)
	if code != http.StatusOK {
		t.Fatalf("plain query: HTTP %d", code)
	}

	resp, err := http.Get(ts.URL + "/query?" + url.Values{"q": {q}, "explain": {"analyze"}, "limit": {"-1"}}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain=analyze: HTTP %d", resp.StatusCode)
	}
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Count != plain.Count {
		t.Errorf("analyze changed the result: %d docs vs %d", qr.Count, plain.Count)
	}
	for _, want := range []string{"est_cost=", "act_rows=", "act_time=", "stages:", "shard 0:"} {
		if !strings.Contains(qr.Plan, want) {
			t.Errorf("analyze plan missing %q:\n%s", want, qr.Plan)
		}
	}
	// Analyze re-executes even though the plain query above cached q.
	if qr.Cached {
		t.Error("analyze served the cached result instead of executing")
	}

	resp2, err := http.Get(ts.URL + "/query?" + url.Values{"q": {q}, "explain": {"full"}}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("explain=full: HTTP %d, want 400", resp2.StatusCode)
	}
}

// TestServeSlowlog exercises /debug/slowlog with a zero threshold so
// every query (and errors) lands in the ring: entries come back newest
// first, Total outlives ring eviction, and the disabled default is an
// empty 200.
func TestServeSlowlog(t *testing.T) {
	corpus := testCorpus(t)
	eng := engine.New(engine.Config{Shards: 2, CacheSize: 16})
	if err := loadCorpus(eng, corpus); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(eng, serverOptions{
		slow: obs.NewSlowLog(0, 4),
	}).handler())
	t.Cleanup(ts.Close)

	queries := []string{
		workload.TermName(0),
		workload.TermName(1),
		workload.TermName(2),
		workload.TermName(3),
		workload.TermName(4),
	}
	for _, q := range queries {
		if _, code := getQuery(t, ts, q); code != http.StatusOK {
			t.Fatalf("query %q: HTTP %d", q, code)
		}
	}
	if _, code := getQuery(t, ts, "a AND ("); code != http.StatusBadRequest {
		t.Fatalf("malformed query: HTTP %d", code)
	}

	resp, err := http.Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sl slowlogResponse
	if err := json.NewDecoder(resp.Body).Decode(&sl); err != nil {
		t.Fatal(err)
	}
	if sl.Total != 6 {
		t.Errorf("total = %d, want 6 (5 queries + 1 error)", sl.Total)
	}
	if len(sl.Entries) != 4 {
		t.Fatalf("ring holds %d entries, want capacity 4", len(sl.Entries))
	}
	// Newest first: the error entry is the most recent.
	if sl.Entries[0].Error == "" || sl.Entries[0].Query != "a AND (" {
		t.Errorf("newest entry = %+v, want the failed query", sl.Entries[0])
	}
	for i, e := range sl.Entries[1:] {
		want := queries[len(queries)-1-i]
		if e.Query != want {
			t.Errorf("entry %d query = %q, want %q", i+1, e.Query, want)
		}
		if e.DurationUS < 0 || e.Time.IsZero() || e.Time.After(time.Now()) {
			t.Errorf("entry %d has bogus timing: %+v", i+1, e)
		}
	}

	// The default server (no slowlog) still serves the endpoint: empty.
	tsOff, _ := testServer(t, corpus, 1)
	respOff, err := http.Get(tsOff.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer respOff.Body.Close()
	if respOff.StatusCode != http.StatusOK {
		t.Fatalf("disabled slowlog: HTTP %d", respOff.StatusCode)
	}
	var off slowlogResponse
	if err := json.NewDecoder(respOff.Body).Decode(&off); err != nil {
		t.Fatal(err)
	}
	if off.Total != 0 || len(off.Entries) != 0 || off.ThresholdMS != 0 {
		t.Errorf("disabled slowlog = %+v, want empty", off)
	}
}

// TestServePprofGate: /debug/pprof/ exists only behind the -pprof flag.
func TestServePprofGate(t *testing.T) {
	corpus := testCorpus(t)
	eng := engine.New(engine.Config{Shards: 1})
	if err := loadCorpus(eng, corpus); err != nil {
		t.Fatal(err)
	}
	tsOn := httptest.NewServer(newServer(eng, serverOptions{pprof: true}).handler())
	t.Cleanup(tsOn.Close)
	resp, err := http.Get(tsOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof enabled: HTTP %d, want 200", resp.StatusCode)
	}

	tsOff, _ := testServer(t, corpus, 1)
	resp, err = http.Get(tsOff.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof disabled: HTTP %d, want 404", resp.StatusCode)
	}
}
