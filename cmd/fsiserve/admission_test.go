package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"fastintersect/internal/admission"
	"fastintersect/internal/engine"
	"fastintersect/internal/obs"
)

// slowTestServer builds a server whose engine has a large injected
// per-shard delay, a tiny admission gate, and a slowlog — the overload
// surface in miniature.
func slowTestServer(t testing.TB, delay time.Duration, acfg admission.Config, deadline time.Duration) (*httptest.Server, *server) {
	t.Helper()
	eng := engine.New(engine.Config{
		Shards:    1,
		CacheSize: 0,
		Faults:    &engine.FaultPlan{Shard: -1, Delay: delay},
	})
	if err := loadCorpus(eng, testCorpus(t)); err != nil {
		t.Fatal(err)
	}
	srv := newServer(eng, serverOptions{
		slow:            obs.NewSlowLog(time.Hour, 64), // reason entries bypass the threshold
		admission:       acfg,
		defaultDeadline: deadline,
	})
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func get(t *testing.T, rawURL string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// TestDeadlineExceededIs503 exercises end-to-end deadline propagation: the
// handler's context expires inside shard evaluation and the response is a
// 503 with Retry-After, recorded in the slowlog with a reason.
func TestDeadlineExceededIs503(t *testing.T) {
	ts, srv := slowTestServer(t, 200*time.Millisecond, admission.Config{MaxInflight: 4}, 0)
	q := url.Values{"q": {"t0 AND t1"}, "deadline_ms": {"20"}}.Encode()
	code, hdr, body := get(t, ts.URL+"/query?"+q)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	entries := srv.slow.Snapshot()
	if len(entries) == 0 || entries[0].Reason != "deadline" {
		t.Fatalf("slowlog entries = %+v, want a reason=deadline entry", entries)
	}
}

// TestQueueFullIs503: with a saturated gate and no queue, excess requests
// shed immediately with 503.
func TestQueueFullIs503(t *testing.T) {
	ts, srv := slowTestServer(t, 300*time.Millisecond,
		admission.Config{MaxInflight: 1, QueueDepth: -1}, 0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // occupy the single slot
		defer wg.Done()
		get(t, ts.URL+"/query?"+url.Values{"q": {"t0 AND t1"}}.Encode())
	}()
	time.Sleep(50 * time.Millisecond) // let the occupier reach the engine
	// A different canonical query (coalescing must not absorb it).
	code, hdr, body := get(t, ts.URL+"/query?"+url.Values{"q": {"t2 AND t3"}}.Encode())
	wg.Wait()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed response without Retry-After")
	}
	found := false
	for _, e := range srv.slow.Snapshot() {
		if e.Reason == "shed_queue_full" {
			found = true
		}
	}
	if !found {
		t.Fatalf("slowlog has no shed_queue_full entry: %+v", srv.slow.Snapshot())
	}
}

// TestQuotaIs429: an over-quota client gets 429 + Retry-After; other
// clients are unaffected.
func TestQuotaIs429(t *testing.T) {
	ts, _ := slowTestServer(t, 0,
		admission.Config{MaxInflight: 8, ClientQPS: 0.001, ClientBurst: 2}, 0)
	q := func(client string) (int, http.Header) {
		code, hdr, _ := get(t, ts.URL+"/query?"+url.Values{"q": {"t0"}, "client": {client}}.Encode())
		return code, hdr
	}
	var last int
	var lastHdr http.Header
	for i := 0; i < 3; i++ {
		last, lastHdr = q("alice")
	}
	if last != http.StatusTooManyRequests {
		t.Fatalf("third request status = %d, want 429", last)
	}
	if lastHdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if code, _ := q("bob"); code != http.StatusOK {
		t.Fatalf("other client status = %d, want 200", code)
	}
}

// TestCoalescing: concurrent duplicates of one canonical query share one
// execution — observable via the coalesced flag in responses and the
// fsi_coalesced_queries_total counter.
func TestCoalescing(t *testing.T) {
	ts, srv := slowTestServer(t, 100*time.Millisecond, admission.Config{MaxInflight: 8}, 0)
	const dup = 6
	var wg sync.WaitGroup
	codes := make([]int, dup)
	coalesced := make([]bool, dup)
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Syntactic variants of one canonical form: coalescing keys on
			// the normalized query, not the raw text.
			raw := "t0 AND t1"
			if i%2 == 1 {
				raw = "t1 AND t0"
			}
			code, _, body := get(t, ts.URL+"/query?"+url.Values{"q": {raw}}.Encode())
			codes[i] = code
			var qr queryResponse
			if code == http.StatusOK {
				if err := json.Unmarshal(body, &qr); err != nil {
					t.Errorf("decode: %v", err)
					return
				}
				coalesced[i] = qr.Coalesced
			}
		}(i)
	}
	wg.Wait()
	nCoalesced := 0
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d status = %d", i, code)
		}
		if coalesced[i] {
			nCoalesced++
		}
	}
	if nCoalesced == 0 {
		t.Fatal("no request reported coalesced=true")
	}
	var sb strings.Builder
	if err := srv.eng.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fsi_coalesced_queries_total") {
		t.Fatal("fsi_coalesced_queries_total not in /metrics scrape")
	}
	var total int
	for _, line := range strings.Split(sb.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "fsi_coalesced_queries_total "); ok {
			fmt.Sscanf(rest, "%d", &total)
		}
	}
	if total != nCoalesced {
		t.Fatalf("fsi_coalesced_queries_total = %d, responses flagged coalesced = %d", total, nCoalesced)
	}
}

// TestAdmissionMetricsExposed: the gate's series appear in one /metrics
// scrape alongside the engine's.
func TestAdmissionMetricsExposed(t *testing.T) {
	ts, _ := slowTestServer(t, 0, admission.Config{MaxInflight: 2}, time.Second)
	get(t, ts.URL+"/query?"+url.Values{"q": {"t0"}}.Encode())
	_, _, body := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"fsi_admission_accepted_total",
		`fsi_admission_rejected_total{reason="quota"}`,
		`fsi_admission_shed_total{reason="queue_full"}`,
		"fsi_inflight",
		"fsi_queue_wait_seconds",
		"fsi_coalesced_queries_total",
		`fsi_overload_responses_total{reason="deadline"}`,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestBadDeadlineParam: malformed deadline_ms is a 400, before admission.
func TestBadDeadlineParam(t *testing.T) {
	ts, _ := slowTestServer(t, 0, admission.Config{MaxInflight: 2}, 0)
	for _, bad := range []string{"-5", "abc"} {
		code, _, _ := get(t, ts.URL+"/query?"+url.Values{"q": {"t0"}, "deadline_ms": {bad}}.Encode())
		if code != http.StatusBadRequest {
			t.Errorf("deadline_ms=%q status = %d, want 400", bad, code)
		}
	}
}

// TestBatchDeadline: a batch whose body deadline expires mid-run reports
// per-query context errors (the batch call itself stays 200 — per-query
// failures are per-slot, like parse errors).
func TestBatchDeadline(t *testing.T) {
	ts, _ := slowTestServer(t, 100*time.Millisecond, admission.Config{MaxInflight: 2}, 0)
	dl := 20
	body, _ := json.Marshal(batchRequest{
		Queries:    []string{"t0 AND t1", "t2 AND t3"},
		DeadlineMS: &dl,
	})
	resp, err := http.Post(ts.URL+"/query/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d (%s), want 200", resp.StatusCode, b)
	}
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	errs := 0
	for _, item := range br.Results {
		if item.Error != "" {
			errs++
		}
	}
	if errs == 0 {
		t.Fatalf("no per-query deadline errors in %+v", br.Results)
	}
}

// TestChurnServeAdmission drives the HTTP surface concurrently — queries
// with tight deadlines, mutations, scrapes — under the race step's Churn
// name filter.
func TestChurnServeAdmission(t *testing.T) {
	ts, _ := slowTestServer(t, time.Millisecond,
		admission.Config{MaxInflight: 2, QueueDepth: 2}, 10*time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				switch w % 3 {
				case 0:
					code, _, _ := get(t, ts.URL+"/query?"+url.Values{"q": {"t0 AND t1"}}.Encode())
					if code != http.StatusOK && code != http.StatusServiceUnavailable {
						t.Errorf("query status %d", code)
						return
					}
				case 1:
					body, _ := json.Marshal(addDocRequest{DocID: uint32(100_000 + w*1000 + i), Terms: []string{"t0"}})
					resp, err := http.Post(ts.URL+"/index/doc", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Errorf("add: %v", err)
						return
					}
					resp.Body.Close()
				case 2:
					get(t, ts.URL+"/metrics")
				}
			}
		}(w)
	}
	wg.Wait()
}
