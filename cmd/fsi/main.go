// Command fsi intersects sets of integers from files, one ID per line,
// using any of the library's algorithms — a minimal end-to-end demo of the
// public API.
//
// Usage:
//
//	fsi -algo RanGroupScan a.txt b.txt c.txt
//	fsi -explain a.txt b.txt        # print the planned kernel + cost estimate
//	seq 1 2 100 > odd.txt; seq 0 5 100 > five.txt; fsi odd.txt five.txt
//
// With -algo Auto (the default) the kernel is chosen by the query
// planner's calibrated cost model over the operand sizes; -explain prints
// the decision (kernel, cost-ordered operands, calibrated coefficients)
// to stderr before intersecting.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"slices"
	"strconv"
	"strings"
	"time"

	"fastintersect"
	"fastintersect/internal/plan"
)

func main() {
	var (
		algoName = flag.String("algo", "Auto", "algorithm: Auto, RanGroupScan, RanGroup, IntGroup, HashBin, Merge, Hash, SkipList, SvS, Adaptive, BaezaYates, SmallAdaptive, Lookup, BPP")
		timing   = flag.Bool("time", false, "print preprocessing and intersection times")
		explain  = flag.Bool("explain", false, "print the physical plan (chosen kernel, operand order, calibrated cost estimate) to stderr before intersecting")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: fsi [-algo NAME] [-time] [-explain] file1 [file2 ...]")
		os.Exit(2)
	}
	algo, err := fastintersect.ParseAlgorithm(*algoName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsi: %v\n", err)
		os.Exit(2)
	}
	lists := make([]*fastintersect.List, flag.NArg())
	paths := append([]string(nil), flag.Args()...)
	prepStart := time.Now()
	for i, path := range flag.Args() {
		ids, err := readIDs(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsi: %v\n", err)
			os.Exit(1)
		}
		lists[i], err = fastintersect.PreprocessUnsorted(ids)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsi: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
	prep := time.Since(prepStart)
	// Cost-order the operands and, for Auto, let the calibrated cost model
	// pick the kernel — the same planner the query engine runs on.
	type operand struct {
		list *fastintersect.List
		path string
	}
	ops := make([]operand, len(lists))
	for i := range lists {
		ops[i] = operand{lists[i], paths[i]}
	}
	slices.SortStableFunc(ops, func(a, b operand) int { return a.list.Len() - b.list.Len() })
	for i, op := range ops {
		lists[i], paths[i] = op.list, op.path
	}
	if algo == fastintersect.Auto || *explain {
		// Only now pay the one-time micro-calibration: an explicit -algo
		// without -explain never consults the cost model.
		costs := plan.Calibrated()
		if algo == fastintersect.Auto && len(lists) >= 2 {
			sizes := make([]int, len(lists))
			span := 0
			for i, l := range lists {
				sizes[i] = l.Len()
				if sp := l.Span(); sp > 0 && (span == 0 || sp < span) {
					span = sp
				}
			}
			algo = fastintersect.KernelAlgorithm(plan.ChooseListKernel(costs, plan.KernelsCost, sizes, span))
		}
		if *explain {
			var parts []string
			for i, l := range lists {
				parts = append(parts, fmt.Sprintf("%s(%d)", paths[i], l.Len()))
			}
			fmt.Fprintf(os.Stderr, "fsi: plan: kernel=%v operands=[%s] costs{scan=%.2f probe=%.2f hash=%.2f filter=%.2f gap=%.2f ns}\n",
				algo, strings.Join(parts, " "), costs.Scan, costs.Probe, costs.Hash, costs.Filter, costs.GapDecode)
		}
	}
	start := time.Now()
	res, err := fastintersect.IntersectWith(algo, lists...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsi: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	out := append([]uint32(nil), res...)
	if !algo.Sorted() {
		sortU32(out)
	}
	w := bufio.NewWriter(os.Stdout)
	for _, x := range out {
		fmt.Fprintln(w, x)
	}
	w.Flush()
	if *timing {
		fmt.Fprintf(os.Stderr, "algorithm=%v preprocess=%v intersect=%v result=%d\n",
			algo, prep.Round(time.Microsecond), elapsed.Round(time.Microsecond), len(out))
	}
}

func readIDs(path string) ([]uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ids []uint32
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseUint(line, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%s: bad id %q: %w", path, line, err)
		}
		ids = append(ids, uint32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ids, nil
}

func sortU32(s []uint32) {
	slices.Sort(s)
}
