// Command fsibench regenerates the tables and figures of "Fast Set
// Intersection in Memory" (Ding & König, VLDB 2011). Every experiment in
// the paper's evaluation has an ID here; see DESIGN.md for the mapping.
//
// Usage:
//
//	fsibench -list
//	fsibench -exp fig4                 # one experiment, small scale
//	fsibench -exp all -scale full      # the whole evaluation, paper scale
//	fsibench -json BENCH_compress.json # machine-readable encoding benchmark
//	fsibench -serve-json BENCH_serve.json # machine-readable serving benchmark
//	fsibench -churn-json BENCH_churn.json # machine-readable live-update churn experiment
//	fsibench -plan-json BENCH_plan.json # machine-readable plan-quality experiment
//	fsibench -obs-json BENCH_obs.json  # machine-readable observability experiment (scraped vs measured percentiles)
//	fsibench -overload-json BENCH_overload.json # machine-readable saturation sweep (shedding vs unbounded queue)
//	fsibench -segments-json BENCH_segments.json # machine-readable segment-lifecycle comparison (tiered vs full-rebuild compaction)
//	fsibench -feedback-json BENCH_feedback.json # machine-readable cost-model drift experiment (frozen vs feedback-corrected vs oracle)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fastintersect"
	"fastintersect/internal/harness"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment ID to run, or 'all'")
		scale    = flag.String("scale", "small", "'small' (minutes) or 'full' (paper-scale sizes)")
		reps     = flag.Int("reps", 3, "timing repetitions (minimum is reported)")
		seed     = flag.Uint64("seed", 0x5EED_F00D, "workload seed")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		algos    = flag.String("algos", "", "comma-separated algorithm filter (e.g. 'Merge,RanGroupScan'); empty = each experiment's defaults")
		jsonOut  = flag.String("json", "", "run the storage-sweep encoding benchmark and write it as JSON to this file (ns/op and bytes/posting per encoding), then exit")
		serveOut = flag.String("serve-json", "", "run the engine serving benchmark (mixed AND/OR workload) and write it as JSON to this file (QPS, ns/op, B/op, allocs/op per storage mode), then exit")
		churnOut = flag.String("churn-json", "", "run the live-update churn experiment (interleaved add/delete/query) and write it as JSON to this file (latency vs delta size per storage × compaction threshold), then exit")
		planOut  = flag.String("plan-json", "", "run the plan-quality experiment (cost-based plans vs df-ordered baseline vs worst-order) and write it as JSON to this file (ns/op per workload shape × storage × policy), then exit")
		obsOut   = flag.String("obs-json", "", "run the observability experiment (replay with /metrics scrapes between phases) and write it as JSON to this file (measured vs histogram-scraped latency percentiles per phase), then exit")
		overOut  = flag.String("overload-json", "", "run the saturation experiment (open-loop offered load at multiples of capacity, shedding vs unbounded queue) and write it as JSON to this file (accepted p50/p99 and goodput per point), then exit")
		segsOut  = flag.String("segments-json", "", "run the segment-lifecycle experiment (same churn stream under tiered vs full-rebuild compaction) and write it as JSON to this file (write amplification, pause proxy, latency percentiles, cross-policy parity), then exit")
		fbOut    = flag.String("feedback-json", "", "run the cost-model drift experiment (frozen mis-calibrated anchors vs feedback-corrected vs freshly calibrated oracle) and write it as JSON to this file (ns/op, executed-kernel mix and learned corrections per phase × engine), then exit")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Registry {
			fmt.Printf("%-16s %s (%s)\n", e.ID, e.Title, e.Paper)
		}
		return
	}
	cfg := harness.Config{Scale: *scale, Seed: *seed, Reps: *reps}
	if *algos != "" {
		for _, name := range strings.Split(*algos, ",") {
			a, err := fastintersect.ParseAlgorithm(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "fsibench: %v\n", err)
				os.Exit(2)
			}
			cfg.Algos = append(cfg.Algos, a)
		}
	}
	if cfg.Scale != "small" && cfg.Scale != "full" {
		fmt.Fprintln(os.Stderr, "fsibench: -scale must be 'small' or 'full'")
		os.Exit(2)
	}
	writeJSON := func(path string, rep any) {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsibench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "fsibench: %v\n", err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		rep := harness.CompressBench(cfg)
		writeJSON(*jsonOut, rep)
		fmt.Printf("wrote %s (%d workloads × %d encodings)\n",
			*jsonOut, len(rep.Workloads), len(rep.Workloads[0].Encodings))
		return
	}
	if *serveOut != "" {
		rep := harness.ServeBench(cfg)
		writeJSON(*serveOut, rep)
		fmt.Printf("wrote %s (%d scenarios)\n", *serveOut, len(rep.Scenarios))
		return
	}
	if *churnOut != "" {
		rep := harness.ChurnBench(cfg)
		writeJSON(*churnOut, rep)
		fmt.Printf("wrote %s (%d scenarios)\n", *churnOut, len(rep.Scenarios))
		return
	}
	if *planOut != "" {
		rep := harness.PlanBench(cfg)
		writeJSON(*planOut, rep)
		fmt.Printf("wrote %s (%d scenarios)\n", *planOut, len(rep.Scenarios))
		return
	}
	if *obsOut != "" {
		rep := harness.ObsBench(cfg)
		writeJSON(*obsOut, rep)
		fmt.Printf("wrote %s (%d phases)\n", *obsOut, len(rep.Phases))
		return
	}
	if *segsOut != "" {
		rep := harness.SegmentsBench(cfg)
		writeJSON(*segsOut, rep)
		fmt.Printf("wrote %s (%d scenarios, %d parity checks)\n", *segsOut, len(rep.Scenarios), len(rep.Parity))
		return
	}
	if *fbOut != "" {
		rep := harness.FeedbackBench(cfg)
		writeJSON(*fbOut, rep)
		fmt.Printf("wrote %s (%d scenarios, post-drift feedback/frozen %.3f)\n",
			*fbOut, len(rep.Scenarios), rep.PostDriftRatio)
		return
	}
	if *overOut != "" {
		rep := harness.OverloadBench(cfg)
		writeJSON(*overOut, rep)
		fmt.Printf("wrote %s (%d points, capacity %.0f qps)\n", *overOut, len(rep.Points), rep.CapacityQPS)
		return
	}
	run := func(e harness.Experiment) {
		start := time.Now()
		tables := e.Run(cfg)
		for _, t := range tables {
			t.Print(os.Stdout)
		}
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if *exp == "all" {
		for _, e := range harness.Registry {
			run(e)
		}
		return
	}
	e, ok := harness.Get(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "fsibench: unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	run(e)
}
