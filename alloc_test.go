package fastintersect

import (
	"testing"

	"fastintersect/internal/sets"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

// allocLists builds two preprocessed lists with warmed structure caches.
func allocLists(t *testing.T, algo Algorithm) []*List {
	t.Helper()
	rng := xhash.NewRNG(0xA110C)
	a, b := workload.PairWithIntersection(1<<20, 4096, 8192, 128, rng)
	la, err := Preprocess(a)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := Preprocess(b)
	if err != nil {
		t.Fatal(err)
	}
	lists := []*List{la, lb}
	if _, err := IntersectWith(algo, lists...); err != nil { // build cached structures
		t.Fatal(err)
	}
	return lists
}

// TestIntersectIntoAllocs pins the tentpole guarantee: once the per-list
// structures are built and the context is warm, the buffered API runs the
// core kernels with zero allocations per operation. A regression here means
// some layer started allocating on the hot path again.
func TestIntersectIntoAllocs(t *testing.T) {
	for _, tc := range []struct {
		algo Algorithm
		max  float64
	}{
		{RanGroupScan, 0},
		{RanGroup, 0},
		{HashBin, 0},
		{Bitseg, 0},
		{Merge, 8}, // baselines allocate internally; just pin against blowup
	} {
		t.Run(tc.algo.String(), func(t *testing.T) {
			lists := allocLists(t, tc.algo)
			ctx := GetExecContext()
			defer ctx.Release()
			dst := make([]uint32, 0, 8192)
			for i := 0; i < 3; i++ { // warm context scratch
				if _, err := IntersectInto(ctx, dst[:0], tc.algo, lists...); err != nil {
					t.Fatal(err)
				}
			}
			var err error
			n := testing.AllocsPerRun(100, func() {
				_, err = IntersectInto(ctx, dst[:0], tc.algo, lists...)
			})
			if err != nil {
				t.Fatal(err)
			}
			if n > tc.max {
				t.Fatalf("IntersectInto(%v) allocates %.1f times per op, want ≤ %v", tc.algo, n, tc.max)
			}
		})
	}
}

// TestIntersectWithBufAllocs pins the same guarantee for the
// context-buffer form, the one the acceptance criterion names: a cached
// 2-list RanGroupScan intersection at 0 allocs/op.
func TestIntersectWithBufAllocs(t *testing.T) {
	lists := allocLists(t, RanGroupScan)
	ctx := GetExecContext()
	defer ctx.Release()
	for i := 0; i < 3; i++ { // warm context scratch and result buffer
		if _, err := IntersectWithBuf(ctx, RanGroupScan, lists...); err != nil {
			t.Fatal(err)
		}
	}
	var err error
	n := testing.AllocsPerRun(100, func() {
		_, err = IntersectWithBuf(ctx, RanGroupScan, lists...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("IntersectWithBuf(RanGroupScan) allocates %.1f times per op, want 0", n)
	}
}

// TestIntersectIntoMatchesIntersectWith checks the buffered API against the
// allocating API for every algorithm, including k-way and skewed shapes.
func TestIntersectIntoMatchesIntersectWith(t *testing.T) {
	rng := xhash.NewRNG(0xBEEF)
	shapes := [][]int{{512, 512}, {128, 4096}, {512, 512, 512}, {64, 256, 1024, 4096}}
	for _, ns := range shapes {
		raw := workload.KWithIntersection(1<<18, ns, 16, rng)
		lists := make([]*List, len(raw))
		for i, s := range raw {
			l, err := Preprocess(s)
			if err != nil {
				t.Fatal(err)
			}
			lists[i] = l
		}
		for _, algo := range Algorithms() {
			if mx := algo.MaxSets(); mx > 0 && len(lists) > mx {
				continue
			}
			want, err := IntersectWith(algo, lists...)
			if err != nil {
				t.Fatalf("%v/%d: %v", algo, len(ns), err)
			}
			ctx := GetExecContext()
			got, err := IntersectInto(ctx, make([]uint32, 0, 16), algo, lists...)
			if err != nil {
				t.Fatalf("%v/%d: %v", algo, len(ns), err)
			}
			sets.SortU32(want)
			gotCopy := sets.Clone(got)
			sets.SortU32(gotCopy)
			if !sets.Equal(gotCopy, want) {
				t.Fatalf("%v over %v: IntersectInto disagrees with IntersectWith (%d vs %d elements)",
					algo, ns, len(gotCopy), len(want))
			}
			// And the buffer-owned form.
			bufOut, err := IntersectWithBuf(ctx, algo, lists...)
			if err != nil {
				t.Fatal(err)
			}
			bufCopy := sets.Clone(bufOut)
			sets.SortU32(bufCopy)
			if !sets.Equal(bufCopy, want) {
				t.Fatalf("%v over %v: IntersectWithBuf disagrees", algo, ns)
			}
			ctx.Release()
		}
	}
}

// TestResetClearsShrunkTails guards the pool-pinning leak: a context used
// for a wide intersection and then a narrower one reslices its operand
// arrays down, so Reset must clear the full capacity — entries beyond the
// current length still hold the wide call's pointers.
func TestResetClearsShrunkTails(t *testing.T) {
	rng := xhash.NewRNG(0x4E5E7)
	raw := workload.KWithIntersection(1<<18, []int{256, 256, 256, 256}, 8, rng)
	lists := make([]*List, len(raw))
	for i, s := range raw {
		l, err := Preprocess(s)
		if err != nil {
			t.Fatal(err)
		}
		lists[i] = l
	}
	ctx := GetExecContext()
	defer ctx.Release()
	if _, err := IntersectWithBuf(ctx, RanGroupScan, lists...); err != nil {
		t.Fatal(err)
	}
	if _, err := IntersectWithBuf(ctx, RanGroupScan, lists[:2]...); err != nil {
		t.Fatal(err)
	}
	ctx.Reset()
	for _, p := range ctx.rgs[:cap(ctx.rgs)] {
		if p != nil {
			t.Fatal("Reset left a RanGroupScan operand pointer in the shrunk tail")
		}
	}
}

// TestIntersectWithBufReuse verifies the documented aliasing contract: a
// second query on the same context reuses (and overwrites) the buffer of
// the first.
func TestIntersectWithBufReuse(t *testing.T) {
	lists := allocLists(t, RanGroupScan)
	ctx := GetExecContext()
	defer ctx.Release()
	first, err := IntersectWithBuf(ctx, RanGroupScan, lists...)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := sets.Clone(first)
	second, err := IntersectWithBuf(ctx, RanGroupScan, lists...)
	if err != nil {
		t.Fatal(err)
	}
	if !sets.Equal(second, snapshot) {
		t.Fatal("repeated IntersectWithBuf changed the result")
	}
	if len(first) > 0 && len(second) > 0 && &first[0] != &second[0] {
		t.Fatal("IntersectWithBuf did not reuse the context buffer")
	}
}
